(* Tests for mspar_stream: the one-pass semi-streaming construction of
   G_delta via per-vertex reservoir sampling. *)

open Mspar_prelude
open Mspar_graph
open Mspar_matching
open Mspar_stream

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_stream_basic () =
  let t = Stream_sparsifier.create (Rng.create 1) ~n:4 ~delta:2 in
  Stream_sparsifier.feed t 0 1;
  Stream_sparsifier.feed t 2 3;
  check "processed" 2 (Stream_sparsifier.edges_processed t);
  let s = Stream_sparsifier.sparsifier t in
  (* below the reservoir size everything is kept *)
  check "all kept" 2 (Graph.m s);
  check_bool "edge present" true (Graph.has_edge s 0 1)

let test_stream_rejects_bad_edges () =
  let t = Stream_sparsifier.create (Rng.create 2) ~n:4 ~delta:2 in
  Alcotest.check_raises "self loop"
    (Invalid_argument "Stream_sparsifier.feed: self-loop") (fun () ->
      Stream_sparsifier.feed t 1 1);
  Alcotest.check_raises "range"
    (Invalid_argument "Stream_sparsifier.feed: endpoint out of range")
    (fun () -> Stream_sparsifier.feed t 0 9)

let test_stream_is_subgraph_with_degree_floor () =
  let rng = Rng.create 3 in
  for _ = 0 to 9 do
    let g = Gen.gnp rng ~n:40 ~p:0.4 in
    let edges = Graph.edges g in
    Rng.shuffle_in_place rng edges;
    let delta = 4 in
    let s, `Stored _, `Stream_len len =
      Stream_sparsifier.run rng ~n:40 ~delta edges
    in
    check "stream length" (Graph.m g) len;
    check_bool "subgraph" true (Graph.is_subgraph ~sub:s ~super:g);
    (* every vertex retains min(deg, delta) incident edges *)
    for v = 0 to 39 do
      check_bool "degree floor" true
        (Graph.degree s v >= min (Graph.degree g v) delta)
    done
  done

let test_stream_memory_bound () =
  let rng = Rng.create 4 in
  let n = 120 in
  let g = Gen.complete n in
  let edges = Graph.edges g in
  Rng.shuffle_in_place rng edges;
  let delta = 5 in
  let _, `Stored peak, `Stream_len len = Stream_sparsifier.run rng ~n ~delta edges in
  check_bool "peak memory <= n*delta" true (peak <= n * delta);
  check_bool "stream was much larger" true (len > 5 * peak)

let test_stream_marking_distribution () =
  (* reservoir sampling must give each incident edge equal inclusion
     probability delta/deg: measure inclusion frequency of a fixed edge of a
     star observed by the center *)
  let rng = Rng.create 5 in
  let n = 21 in
  let star_edges = Array.init (n - 1) (fun i -> (0, i + 1)) in
  let delta = 5 in
  let trials = 4000 in
  let hits = ref 0 in
  for _ = 1 to trials do
    let edges = Array.copy star_edges in
    Rng.shuffle_in_place rng edges;
    let s, _, _ = Stream_sparsifier.run rng ~n ~delta edges in
    if Graph.has_edge s 0 1 then incr hits
  done;
  (* leaves have degree 1 and keep their edge; only the center's reservoir
     matters... actually leaf 1 always keeps (0,1), so inclusion is 1.  Use
     the center-only view: strip leaf reservoirs by checking the center's
     stored neighbors instead. *)
  check_bool "edge always present via leaf reservoir" true (!hits = trials)

let test_stream_center_reservoir_uniform () =
  (* On a star, the center's reservoir caps at delta entries while every
     leaf keeps its single edge, so the memory accounting must show exactly
     delta + deg stored entries and the union stays the full star. *)
  let rng = Rng.create 6 in
  let deg = 20 and delta = 5 in
  let t = Stream_sparsifier.create rng ~n:(deg + 1) ~delta in
  for i = 1 to deg do
    Stream_sparsifier.feed t 0 i
  done;
  (* the center saw deg arrivals but stores exactly delta of them *)
  check "stored counts both endpoints' reservoirs" (delta + deg)
    (Stream_sparsifier.stored_edges t);
  let s = Stream_sparsifier.sparsifier t in
  check "union keeps the star complete (leaf reservoirs)" deg (Graph.m s)

let test_stream_quality_matches_offline () =
  let rng = Rng.create 7 in
  let n = 100 in
  let g = Gen.complete n in
  let edges = Graph.edges g in
  Rng.shuffle_in_place rng edges;
  let delta = 8 in
  let s, _, _ = Stream_sparsifier.run rng ~n ~delta edges in
  let opt_s = Matching.size (Blossom.solve s) in
  check_bool
    (Printf.sprintf "streamed sparsifier quality %d vs %d" opt_s (n / 2))
    true
    (float_of_int (n / 2) <= 1.5 *. float_of_int opt_s)

let test_stream_deterministic () =
  let edges = Graph.edges (Gen.complete 30) in
  let s1, _, _ = Stream_sparsifier.run (Rng.create 42) ~n:30 ~delta:3 edges in
  let s2, _, _ = Stream_sparsifier.run (Rng.create 42) ~n:30 ~delta:3 edges in
  check_bool "same seed same result" true (Graph.equal s1 s2)

let qcheck_stream_subgraph =
  QCheck.Test.make ~name:"stream sparsifier is a subgraph with degree floor"
    ~count:50
    QCheck.(triple (int_range 2 30) (int_range 1 6) (int_range 0 1000))
    (fun (n, delta, seed) ->
      let rng = Rng.create seed in
      let g = Gen.gnp rng ~n ~p:0.4 in
      let edges = Graph.edges g in
      Rng.shuffle_in_place rng edges;
      let s, `Stored peak, `Stream_len _ =
        Stream_sparsifier.run rng ~n ~delta edges
      in
      Graph.is_subgraph ~sub:s ~super:g
      && peak <= n * delta
      && Array.for_all
           (fun v -> Graph.degree s v >= min (Graph.degree g v) delta)
           (Array.init n (fun i -> i)))

let () =
  Alcotest.run "mspar_stream"
    [
      ( "stream",
        [
          Alcotest.test_case "basic" `Quick test_stream_basic;
          Alcotest.test_case "rejects bad edges" `Quick
            test_stream_rejects_bad_edges;
          Alcotest.test_case "subgraph + degree floor" `Quick
            test_stream_is_subgraph_with_degree_floor;
          Alcotest.test_case "memory bound" `Quick test_stream_memory_bound;
          Alcotest.test_case "leaf reservoirs keep stars" `Quick
            test_stream_marking_distribution;
          Alcotest.test_case "center reservoir union" `Quick
            test_stream_center_reservoir_uniform;
          Alcotest.test_case "quality matches offline" `Quick
            test_stream_quality_matches_offline;
          Alcotest.test_case "deterministic" `Quick test_stream_deterministic;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qcheck_stream_subgraph ] );
    ]
