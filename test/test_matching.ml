(* Tests for mspar_matching: representation invariants, greedy, Hopcroft-
   Karp, Edmonds blossom (validated against a brute-force oracle), the
   depth-limited approximation mode, and the augmenting-path oracle. *)

open Mspar_prelude
open Mspar_graph
open Mspar_matching

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Matching representation                                            *)
(* ------------------------------------------------------------------ *)

let test_matching_basic () =
  let m = Matching.create 6 in
  check "empty size" 0 (Matching.size m);
  Matching.add m 0 1;
  Matching.add m 2 5;
  check "size" 2 (Matching.size m);
  check "mate 0" 1 (Matching.mate m 0);
  check "mate 5" 2 (Matching.mate m 5);
  check_bool "3 free" false (Matching.is_matched m 3);
  Matching.remove_edge m 0 1;
  check "size after remove" 1 (Matching.size m);
  check "mate 0 free" (-1) (Matching.mate m 0);
  Matching.remove_vertex m 2;
  check "size after remove_vertex" 0 (Matching.size m)

let test_matching_add_conflicts () =
  let m = Matching.create 4 in
  Matching.add m 0 1;
  Alcotest.check_raises "rematch endpoint" (Invalid_argument "Matching.add: endpoint already matched")
    (fun () -> Matching.add m 1 2);
  Alcotest.check_raises "self loop" (Invalid_argument "Matching.add: self-loop")
    (fun () -> Matching.add m 3 3)

let test_matching_utilities () =
  (* is_perfect *)
  let m = Matching.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  check_bool "perfect" true (Matching.is_perfect m);
  Matching.remove_edge m 2 3;
  check_bool "not perfect" false (Matching.is_perfect m);
  (* restrict_to prunes non-edges *)
  let g = Gen.path 4 in
  let m = Matching.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  check "nothing to prune" 0 (Matching.restrict_to g m);
  let m2 = Matching.create 4 in
  Matching.add m2 0 2;
  (* 0-2 is not a path edge *)
  check "pruned one" 1 (Matching.restrict_to g m2);
  check "empty after prune" 0 (Matching.size m2);
  (* augment_along *)
  let m = Matching.of_edges ~n:4 [ (1, 2) ] in
  Matching.augment_along m [ 0; 1; 2; 3 ];
  check "augmented size" 2 (Matching.size m);
  check "mate flipped" 1 (Matching.mate m 0);
  check "mate flipped 2" 3 (Matching.mate m 2);
  Alcotest.check_raises "non-alternating rejected"
    (Invalid_argument "Matching.augment_along: path does not alternate")
    (fun () ->
      let m = Matching.create 4 in
      Matching.augment_along m [ 0; 1; 2; 3 ]);
  Alcotest.check_raises "matched endpoint rejected"
    (Invalid_argument "Matching.augment_along: endpoints must be free")
    (fun () ->
      let m = Matching.of_edges ~n:4 [ (0, 1) ] in
      Matching.augment_along m [ 0; 2 ])

let test_matching_validity () =
  let g = Gen.path 4 in
  let m = Matching.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  check_bool "valid" true (Matching.is_valid g m);
  check_bool "maximal" true (Matching.is_maximal g m);
  let m2 = Matching.of_edges ~n:4 [ (1, 2) ] in
  check_bool "valid2" true (Matching.is_valid g m2);
  check_bool "maximal2" true (Matching.is_maximal g m2);
  let m3 = Matching.of_edges ~n:4 [ (0, 2) ] in
  check_bool "invalid non-edge" false (Matching.is_valid g m3)

(* ------------------------------------------------------------------ *)
(* Greedy                                                             *)
(* ------------------------------------------------------------------ *)

let test_greedy_maximal () =
  let rng = Rng.create 42 in
  for trial = 0 to 19 do
    let n = 4 + Rng.int rng 12 in
    let g = Gen.gnp rng ~n ~p:0.4 in
    let m = Greedy.maximal g in
    check_bool
      (Printf.sprintf "greedy valid (trial %d)" trial)
      true (Matching.is_valid g m);
    check_bool
      (Printf.sprintf "greedy maximal (trial %d)" trial)
      true (Matching.is_maximal g m);
    let m2 = Greedy.maximal_random rng g in
    check_bool "random greedy valid" true (Matching.is_valid g m2);
    check_bool "random greedy maximal" true (Matching.is_maximal g m2)
  done

let test_greedy_two_approx () =
  let rng = Rng.create 7 in
  for _ = 0 to 19 do
    let n = 4 + Rng.int rng 10 in
    let g = Gen.gnp rng ~n ~p:0.5 in
    let opt = Brute_force.mcm_size g in
    let m = Greedy.maximal g in
    check_bool "2-approximation" true (2 * Matching.size m >= opt)
  done

(* ------------------------------------------------------------------ *)
(* Hopcroft-Karp                                                      *)
(* ------------------------------------------------------------------ *)

let test_bipartition () =
  check_bool "path bipartite" true (Hopcroft_karp.bipartition (Gen.path 5) <> None);
  check_bool "even cycle bipartite" true
    (Hopcroft_karp.bipartition (Gen.cycle 6) <> None);
  check_bool "odd cycle not bipartite" true
    (Hopcroft_karp.bipartition (Gen.cycle 5) = None);
  check_bool "triangle not bipartite" true
    (Hopcroft_karp.bipartition (Gen.complete 3) = None)

let test_hopcroft_karp_exact () =
  let rng = Rng.create 11 in
  for _ = 0 to 29 do
    let left = 2 + Rng.int rng 8 and right = 2 + Rng.int rng 8 in
    let g = Gen.random_bipartite rng ~left ~right ~p:0.4 in
    let opt = Brute_force.mcm_size g in
    let m = Hopcroft_karp.solve g in
    check_bool "hk valid" true (Matching.is_valid g m);
    check "hk optimal" opt (Matching.size m)
  done

let test_hopcroft_karp_phase_limit () =
  let rng = Rng.create 13 in
  for _ = 0 to 19 do
    let left = 4 + Rng.int rng 10 and right = 4 + Rng.int rng 10 in
    let g = Gen.random_bipartite rng ~left ~right ~p:0.3 in
    let opt = Brute_force.mcm_size g in
    (* k phases leave no augmenting path of length <= 2k-1, giving a
       (1+1/k)-approximation *)
    List.iter
      (fun k ->
        let m = Hopcroft_karp.solve ~max_phases:k g in
        check_bool "phase-limited valid" true (Matching.is_valid g m);
        let lhs = (k + 1) * Matching.size m in
        check_bool
          (Printf.sprintf "(1+1/%d)-approx: %d vs opt %d" k (Matching.size m) opt)
          true
          (lhs >= k * opt))
      [ 1; 2; 3 ]
  done

(* ------------------------------------------------------------------ *)
(* Blossom                                                            *)
(* ------------------------------------------------------------------ *)

let test_blossom_small_known () =
  (* triangle: MCM = 1 *)
  check "triangle" 1 (Matching.size (Blossom.solve (Gen.complete 3)));
  (* C5: MCM = 2, needs odd-cycle handling *)
  check "C5" 2 (Matching.size (Blossom.solve (Gen.cycle 5)));
  (* C9: MCM = 4 *)
  check "C9" 4 (Matching.size (Blossom.solve (Gen.cycle 9)));
  (* K4: perfect *)
  check "K4" 2 (Matching.size (Blossom.solve (Gen.complete 4)));
  (* Petersen graph: perfect matching of size 5 *)
  let petersen =
    Graph.of_edges ~n:10
      [
        (0, 1); (1, 2); (2, 3); (3, 4); (4, 0);
        (5, 7); (7, 9); (9, 6); (6, 8); (8, 5);
        (0, 5); (1, 6); (2, 7); (3, 8); (4, 9);
      ]
  in
  check "petersen" 5 (Matching.size (Blossom.solve petersen))

let test_blossom_vs_brute_force () =
  let rng = Rng.create 99 in
  for trial = 0 to 59 do
    let n = 3 + Rng.int rng 14 in
    let p = 0.1 +. Rng.float rng 0.6 in
    let g = Gen.gnp rng ~n ~p in
    let opt = Brute_force.mcm_size g in
    let m = Blossom.solve g in
    check_bool "blossom valid" true (Matching.is_valid g m);
    check (Printf.sprintf "blossom optimal (trial %d, n=%d)" trial n) opt
      (Matching.size m)
  done

let test_blossom_structured_families () =
  let rng = Rng.create 123 in
  (* line graphs force many triangles/blossoms *)
  for _ = 0 to 9 do
    let g = Line_graph.random_base rng ~base_n:7 ~p:0.5 in
    if Graph.n g <= 24 && Graph.n g > 0 then begin
      let opt = Brute_force.mcm_size g in
      check "line graph optimal" opt (Matching.size (Blossom.solve g))
    end
  done;
  (* disjoint odd cliques *)
  let g = Gen.disjoint_cliques rng ~n:15 ~k:3 in
  check "cliques optimal" (Brute_force.mcm_size g)
    (Matching.size (Blossom.solve g))

let test_blossom_with_init () =
  let rng = Rng.create 5 in
  for _ = 0 to 19 do
    let n = 4 + Rng.int rng 12 in
    let g = Gen.gnp rng ~n ~p:0.4 in
    let init = Greedy.maximal_random rng g in
    let m = Blossom.solve ~init g in
    check "seeded blossom optimal" (Brute_force.mcm_size g) (Matching.size m)
  done

let test_augment_once () =
  let g = Gen.path 4 in
  (* matching {1-2} admits augmenting path 0-1-2-3 *)
  let m = Matching.of_edges ~n:4 [ (1, 2) ] in
  check_bool "augments" true (Blossom.augment_once g m);
  check "augmented size" 2 (Matching.size m);
  check_bool "valid after" true (Matching.is_valid g m);
  check_bool "no more" false (Blossom.augment_once g m)

(* ------------------------------------------------------------------ *)
(* Depth-limited blossom / Approx                                     *)
(* ------------------------------------------------------------------ *)

let test_bounded_no_short_paths () =
  let rng = Rng.create 31 in
  for _ = 0 to 29 do
    let n = 4 + Rng.int rng 10 in
    let g = Gen.gnp rng ~n ~p:0.4 in
    List.iter
      (fun max_len ->
        let m = Blossom.solve_bounded ~max_len g in
        check_bool "bounded valid" true (Matching.is_valid g m);
        (* the certificate we rely on in benches: no augmenting path of
           length 1 ever remains (that would mean not even maximal) *)
        check_bool "bounded maximal" true (Matching.is_maximal g m))
      [ 1; 3; 5 ]
  done

let test_bounded_approximation_quality () =
  let rng = Rng.create 37 in
  for _ = 0 to 29 do
    let n = 6 + Rng.int rng 12 in
    let g = Gen.gnp rng ~n ~p:0.35 in
    let opt = Brute_force.mcm_size g in
    (* max_len = 2k+1 should give at least k/(k+1) * opt *)
    List.iter
      (fun k ->
        let m = Blossom.solve_bounded ~max_len:((2 * k) + 1) g in
        check_bool
          (Printf.sprintf "bounded (k=%d) ratio: got %d, opt %d" k
             (Matching.size m) opt)
          true
          ((k + 1) * Matching.size m >= k * opt))
      [ 1; 2; 3 ]
  done

let test_bounded_large_cap_is_exact () =
  let rng = Rng.create 41 in
  for _ = 0 to 19 do
    let n = 4 + Rng.int rng 12 in
    let g = Gen.gnp rng ~n ~p:0.4 in
    let m = Blossom.solve_bounded ~max_len:n g in
    check "large cap exact" (Brute_force.mcm_size g) (Matching.size m)
  done

let test_approx_solver () =
  let rng = Rng.create 43 in
  for _ = 0 to 19 do
    let n = 6 + Rng.int rng 10 in
    let g = Gen.gnp rng ~n ~p:0.4 in
    let opt = Brute_force.mcm_size g in
    List.iter
      (fun eps ->
        let m = Approx.solve ~eps g in
        check_bool "approx valid" true (Matching.is_valid g m);
        let bound = float_of_int opt /. (1.0 +. eps) in
        check_bool
          (Printf.sprintf "approx eps=%.2f: got %d, opt %d" eps
             (Matching.size m) opt)
          true
          (float_of_int (Matching.size m) >= bound -. 1e-9))
      [ 0.5; 0.25; 0.1 ]
  done;
  (* bipartite path uses Hopcroft-Karp *)
  let g = Gen.random_bipartite rng ~left:8 ~right:8 ~p:0.3 in
  let m = Approx.solve ~eps:0.2 g in
  check_bool "bipartite approx valid" true (Matching.is_valid g m)

(* ------------------------------------------------------------------ *)
(* Optimality certificates                                            *)
(* ------------------------------------------------------------------ *)

let test_konig_vertex_cover () =
  let rng = Rng.create 61 in
  for _ = 0 to 29 do
    let left = 2 + Rng.int rng 10 and right = 2 + Rng.int rng 10 in
    let g = Gen.random_bipartite rng ~left ~right ~p:0.35 in
    let m, cover = Hopcroft_karp.min_vertex_cover g in
    (* cover size equals matching size (Konig) *)
    let cover_size =
      Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 cover
    in
    check "Konig: |cover| = |matching|" (Matching.size m) cover_size;
    (* every edge is covered *)
    Graph.iter_edges g (fun u v ->
        if not (cover.(u) || cover.(v)) then Alcotest.fail "uncovered edge")
  done

let test_tutte_berge_known () =
  (* star K_{1,5}: MCM = 1; A = {center}: G - A has 5 odd components;
     deficiency 5 - 1 = 4 = 6 - 2*1 *)
  let g = Gen.star 6 in
  let m = Blossom.solve g in
  let a = Blossom.tutte_berge_witness g m in
  check "star deficiency" (6 - (2 * Matching.size m))
    (Blossom.deficiency_formula g ~a);
  (* triangle: MCM = 1, deficiency 1; A = {} works (one odd component) *)
  let g = Gen.complete 3 in
  let m = Blossom.solve g in
  let a = Blossom.tutte_berge_witness g m in
  check "triangle deficiency" 1 (Blossom.deficiency_formula g ~a);
  (* perfect matching graph: deficiency 0 *)
  let g = Gen.complete 8 in
  let m = Blossom.solve g in
  let a = Blossom.tutte_berge_witness g m in
  check "K8 deficiency" 0 (Blossom.deficiency_formula g ~a)

let test_tutte_berge_random () =
  let rng = Rng.create 67 in
  for trial = 0 to 39 do
    let n = 3 + Rng.int rng 16 in
    let p = 0.1 +. Rng.float rng 0.5 in
    let g = Gen.gnp rng ~n ~p in
    let m = Blossom.solve g in
    let a = Blossom.tutte_berge_witness g m in
    check
      (Printf.sprintf "tutte-berge tight (trial %d, n=%d)" trial n)
      (n - (2 * Matching.size m))
      (Blossom.deficiency_formula g ~a)
  done

(* connected components of the subgraph induced by a vertex mask *)
let components_of g mask =
  let nv = Graph.n g in
  let comp = Array.make nv (-1) in
  let count = ref 0 in
  for s = 0 to nv - 1 do
    if mask.(s) && comp.(s) < 0 then begin
      let id = !count in
      incr count;
      let stack = ref [ s ] in
      comp.(s) <- id;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | v :: rest ->
            stack := rest;
            Graph.iter_neighbors g v (fun u ->
                if mask.(u) && comp.(u) < 0 then begin
                  comp.(u) <- id;
                  stack := u :: !stack
                end)
      done
    end
  done;
  (comp, !count)

let test_gallai_edmonds_structure () =
  let rng = Rng.create 68 in
  for _trial = 0 to 19 do
    let n = 4 + Rng.int rng 14 in
    let g = Gen.gnp rng ~n ~p:0.3 in
    let m = Blossom.solve g in
    let ge = Blossom.gallai_edmonds g m in
    (* partition *)
    for v = 0 to n - 1 do
      let flags =
        [ ge.Blossom.d.(v); ge.Blossom.a.(v); ge.Blossom.c.(v) ]
        |> List.filter (fun b -> b)
      in
      check "exactly one part" 1 (List.length flags)
    done;
    (* C has a perfect matching inside itself *)
    let c_vertices =
      Array.to_list (Array.init n (fun v -> v))
      |> List.filter (fun v -> ge.Blossom.c.(v))
    in
    let gc, _ = Graph.induced g (Array.of_list c_vertices) in
    check "C perfectly matched" (Graph.n gc / 2)
      (Matching.size (Blossom.solve gc));
    check_bool "C even" true (Graph.n gc mod 2 = 0);
    (* every component of D is factor-critical: deleting any vertex leaves a
       perfect matching *)
    let comp, ncomp = components_of g ge.Blossom.d in
    for id = 0 to ncomp - 1 do
      let members =
        Array.to_list (Array.init n (fun v -> v))
        |> List.filter (fun v -> comp.(v) = id)
      in
      let gd, _ = Graph.induced g (Array.of_list members) in
      let k = Graph.n gd in
      check_bool "D component odd" true (k mod 2 = 1);
      for drop = 0 to k - 1 do
        let rest =
          Array.of_list
            (List.filter (fun v -> v <> drop) (List.init k (fun i -> i)))
        in
        let gd', _ = Graph.induced gd rest in
        check "factor-critical" ((k - 1) / 2)
          (Matching.size (Blossom.solve gd'))
      done
    done;
    (* the maximum matching matches every A vertex (to somewhere in D) *)
    for v = 0 to n - 1 do
      if ge.Blossom.a.(v) then begin
        check_bool "A vertex matched" true (Matching.is_matched m v);
        check_bool "A matched into D" true (ge.Blossom.d.(Matching.mate m v))
      end
    done
  done

let test_tutte_berge_rejects_non_maximum () =
  let g = Gen.path 4 in
  let not_max = Matching.of_edges ~n:4 [ (1, 2) ] in
  Alcotest.check_raises "non-maximum rejected"
    (Invalid_argument "Blossom.tutte_berge_witness: matching is not maximum")
    (fun () -> ignore (Blossom.tutte_berge_witness g not_max))

(* ------------------------------------------------------------------ *)
(* Brute-force oracle self-checks                                     *)
(* ------------------------------------------------------------------ *)

let test_brute_force_known () =
  check "path4" 2 (Brute_force.mcm_size (Gen.path 4));
  check "path5" 2 (Brute_force.mcm_size (Gen.path 5));
  check "C6" 3 (Brute_force.mcm_size (Gen.cycle 6));
  check "K5" 2 (Brute_force.mcm_size (Gen.complete 5));
  check "star" 1 (Brute_force.mcm_size (Gen.star 6));
  check "empty" 0 (Brute_force.mcm_size (Gen.empty 5))

let test_augmenting_path_oracle () =
  let g = Gen.path 4 in
  let m = Matching.of_edges ~n:4 [ (1, 2) ] in
  check_bool "finds length-3 path" true
    (Brute_force.has_augmenting_path_up_to g m ~max_len:3);
  check_bool "not within length 1" false
    (Brute_force.has_augmenting_path_up_to g m ~max_len:1);
  let perfect = Matching.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  check_bool "perfect has none" false
    (Brute_force.has_augmenting_path_up_to g perfect ~max_len:10)

let test_exact_leaves_no_augmenting_path () =
  let rng = Rng.create 53 in
  for _ = 0 to 19 do
    let n = 4 + Rng.int rng 9 in
    let g = Gen.gnp rng ~n ~p:0.4 in
    let m = Blossom.solve g in
    check_bool "no augmenting path after exact solve" false
      (Brute_force.has_augmenting_path_up_to g m ~max_len:n)
  done

(* ------------------------------------------------------------------ *)
(* Property tests                                                     *)
(* ------------------------------------------------------------------ *)

let qcheck_blossom_optimal =
  QCheck.Test.make ~name:"blossom matches brute force on random graphs"
    ~count:100
    QCheck.(pair (int_range 2 13) (int_range 0 100))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Gen.gnp rng ~n ~p:0.4 in
      Matching.size (Blossom.solve g) = Brute_force.mcm_size g)

let qcheck_greedy_half =
  QCheck.Test.make ~name:"greedy maximal is a 2-approximation" ~count:100
    QCheck.(pair (int_range 2 13) (int_range 0 100))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Gen.gnp rng ~n ~p:0.5 in
      2 * Matching.size (Greedy.maximal g) >= Brute_force.mcm_size g)

let qcheck_hk_equals_blossom =
  QCheck.Test.make ~name:"hopcroft-karp agrees with blossom on bipartite"
    ~count:100
    QCheck.(triple (int_range 2 8) (int_range 2 8) (int_range 0 100))
    (fun (l, r, seed) ->
      let rng = Rng.create seed in
      let g = Gen.random_bipartite rng ~left:l ~right:r ~p:0.4 in
      Matching.size (Hopcroft_karp.solve g) = Matching.size (Blossom.solve g))

let qcheck_bounded_certificate =
  QCheck.Test.make
    ~name:"depth-limited blossom leaves no short augmenting path" ~count:60
    QCheck.(triple (int_range 3 10) (int_range 1 3) (int_range 0 100))
    (fun (n, k, seed) ->
      let rng = Rng.create seed in
      let g = Gen.gnp rng ~n ~p:0.4 in
      let max_len = (2 * k) + 1 in
      let m = Blossom.solve_bounded ~max_len g in
      (* the duality argument only needs: no augmenting path of <= 2k-1
         edges remains. Our search explores up to max_len = 2k+1, so this
         should always hold. *)
      not (Brute_force.has_augmenting_path_up_to g m ~max_len:(2 * k - 1)))

let qcheck_sym_diff =
  QCheck.Test.make
    ~name:"symmetric difference: optimal vs maximal has >= opt - maximal aug paths"
    ~count:60
    QCheck.(pair (int_range 3 12) (int_range 0 100))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Gen.gnp rng ~n ~p:0.4 in
      let maximal = Greedy.maximal g in
      let optimal = Blossom.solve g in
      Matching.symmetric_difference_paths maximal optimal
      >= Matching.size optimal - Matching.size maximal)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        qcheck_blossom_optimal;
        qcheck_greedy_half;
        qcheck_hk_equals_blossom;
        qcheck_bounded_certificate;
        qcheck_sym_diff;
      ]
  in
  Alcotest.run "mspar_matching"
    [
      ( "matching",
        [
          Alcotest.test_case "basic ops" `Quick test_matching_basic;
          Alcotest.test_case "add conflicts" `Quick test_matching_add_conflicts;
          Alcotest.test_case "utilities" `Quick test_matching_utilities;
          Alcotest.test_case "validity" `Quick test_matching_validity;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "maximal" `Quick test_greedy_maximal;
          Alcotest.test_case "2-approx" `Quick test_greedy_two_approx;
        ] );
      ( "hopcroft-karp",
        [
          Alcotest.test_case "bipartition" `Quick test_bipartition;
          Alcotest.test_case "exact" `Quick test_hopcroft_karp_exact;
          Alcotest.test_case "phase limit" `Quick test_hopcroft_karp_phase_limit;
        ] );
      ( "blossom",
        [
          Alcotest.test_case "known instances" `Quick test_blossom_small_known;
          Alcotest.test_case "vs brute force" `Quick test_blossom_vs_brute_force;
          Alcotest.test_case "structured families" `Quick
            test_blossom_structured_families;
          Alcotest.test_case "with init" `Quick test_blossom_with_init;
          Alcotest.test_case "augment once" `Quick test_augment_once;
        ] );
      ( "bounded",
        [
          Alcotest.test_case "no short paths" `Quick test_bounded_no_short_paths;
          Alcotest.test_case "approximation quality" `Quick
            test_bounded_approximation_quality;
          Alcotest.test_case "large cap exact" `Quick
            test_bounded_large_cap_is_exact;
          Alcotest.test_case "approx solver" `Quick test_approx_solver;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "konig vertex cover" `Quick
            test_konig_vertex_cover;
          Alcotest.test_case "tutte-berge known" `Quick test_tutte_berge_known;
          Alcotest.test_case "tutte-berge random" `Quick
            test_tutte_berge_random;
          Alcotest.test_case "tutte-berge rejects non-maximum" `Quick
            test_tutte_berge_rejects_non_maximum;
          Alcotest.test_case "gallai-edmonds structure" `Quick
            test_gallai_edmonds_structure;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "brute force known" `Quick test_brute_force_known;
          Alcotest.test_case "augmenting path oracle" `Quick
            test_augmenting_path_oracle;
          Alcotest.test_case "exact leaves none" `Quick
            test_exact_leaves_no_augmenting_path;
        ] );
      ("properties", qsuite);
    ]
