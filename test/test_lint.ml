(* msparlint rule engine: each rule must fire on a minimal bad snippet and
   stay silent on its good twin; [@lint.allow] and the baseline file must
   suppress findings.  All fixtures are inline strings — the lint engine
   parses sources, it never compiles them. *)

open Msparlint_lib

let cfg = Lint_config.default

(* Lint a fixture as if it lived at [file]; [intf] is the sibling interface
   source.  The default is an empty (but present) .mli so that lib/ fixtures
   exercise one rule at a time instead of also tripping MSP006; use
   [lint_nomli] to model a missing interface. *)
let lint ?(intf = "") ~file source =
  Lint_engine.lint_impl cfg ~file ~source ~mli:(Some intf)

let lint_nomli ~file source = Lint_engine.lint_impl cfg ~file ~source ~mli:None

let codes findings = List.map (fun f -> f.Lint_types.code) findings
let fires code findings = List.exists (fun f -> String.equal f.Lint_types.code code) findings

let check_fires msg code findings =
  Alcotest.(check bool) (msg ^ " fires " ^ code) true (fires code findings)

let check_silent msg code findings =
  Alcotest.(check bool) (msg ^ " silent on " ^ code) false (fires code findings)

(* ---------------------------------------------------------------- *)
(* MSP001: Stdlib.Random                                             *)
(* ---------------------------------------------------------------- *)

let test_msp001 () =
  check_fires "Random.int" "MSP001" (lint ~file:"lib/core/foo.ml" "let x = Random.int 5");
  check_fires "Random.self_init" "MSP001"
    (lint ~file:"bench/foo.ml" "let () = Random.self_init ()");
  check_fires "open Random" "MSP001" (lint ~file:"lib/core/foo.ml" "open Random\nlet x = int 5");
  check_silent "rng.ml is the blessed home" "MSP001"
    (lint ~file:"lib/prelude/rng.ml" "let x = Random.int 5");
  check_silent "seeded Rng" "MSP001"
    (lint ~file:"lib/core/foo.ml" "let x r = Rng.int r 5")

(* ---------------------------------------------------------------- *)
(* MSP002: polymorphic compare in hot dirs                           *)
(* ---------------------------------------------------------------- *)

let test_msp002 () =
  check_fires "bare compare" "MSP002"
    (lint ~file:"lib/graph/foo.ml" "let f l = List.sort compare l");
  check_fires "bare min" "MSP002" (lint ~file:"lib/prelude/foo.ml" "let f a b = min a b");
  check_fires "Stdlib.max" "MSP002" (lint ~file:"lib/core/foo.ml" "let f a b = Stdlib.max a b");
  check_fires "Hashtbl.hash" "MSP002"
    (lint ~file:"lib/parallel/foo.ml" "let f x = Hashtbl.hash x");
  check_fires "tuple =" "MSP002" (lint ~file:"lib/graph/foo.ml" "let f a b c = (a, b) = c");
  check_silent "int = is monomorphic enough" "MSP002"
    (lint ~file:"lib/graph/foo.ml" "let f (a : int) b = a = b");
  check_silent "Int.compare" "MSP002"
    (lint ~file:"lib/graph/foo.ml" "let f l = List.sort Int.compare l");
  check_silent "Float.max" "MSP002" (lint ~file:"lib/graph/foo.ml" "let f a b = Float.max a b");
  check_silent "cold directory" "MSP002"
    (lint ~file:"lib/dynamic/foo.ml" "let f l = List.sort compare l");
  check_silent "test code is not hot" "MSP002"
    (lint ~file:"test/foo.ml" "let f a b c = (a, b) = c")

(* ---------------------------------------------------------------- *)
(* MSP003: CONGEST fidelity                                          *)
(* ---------------------------------------------------------------- *)

let test_msp003 () =
  check_fires "adjacency access in protocol code" "MSP003"
    (lint ~file:"lib/distsim/proto.ml" "let f g v = Graph.iter_neighbors g v (fun _ -> ())");
  check_fires "degree-free accessor" "MSP003"
    (lint ~file:"lib/distsim/proto.ml" "let f g u v = Graph.has_edge g u v");
  check_silent "network.ml is the substrate" "MSP003"
    (lint ~file:"lib/distsim/network.ml" "let f g v = Graph.iter_neighbors g v (fun _ -> ())");
  check_silent "outside distsim" "MSP003"
    (lint ~file:"lib/matching/foo.ml" "let f g v = Graph.iter_neighbors g v (fun _ -> ())");
  check_silent "metadata is free" "MSP003" (lint ~file:"lib/distsim/proto.ml" "let f g = Graph.n g")

(* ---------------------------------------------------------------- *)
(* MSP004: float log feeding integer rounding                        *)
(* ---------------------------------------------------------------- *)

let test_msp004 () =
  (* the exact PR 2 ceil_log2 regression *)
  check_fires "float ceil_log2" "MSP004"
    (lint ~file:"lib/distsim/network.ml"
       "let ceil_log2 n = int_of_float (ceil (log (float_of_int n) /. log 2.))");
  check_fires "truncate of **" "MSP004"
    (lint ~file:"lib/core/foo.ml" "let f k = truncate (2.0 ** float_of_int k)");
  check_fires "log-ratio idiom" "MSP004"
    (lint ~file:"lib/core/foo.ml" "let f x = log x /. log 2.");
  check_silent "integer shifts" "MSP004"
    (lint ~file:"lib/distsim/network.ml"
       "let ceil_log2 n =\n  let rec go k p = if p >= n then k else go (k + 1) (p lsl 1) in\n  go 0 1");
  check_silent "log-free rounding" "MSP004"
    (lint ~file:"lib/core/foo.ml" "let f eps = int_of_float (ceil (1.0 /. eps))")

(* ---------------------------------------------------------------- *)
(* MSP005: Obj/Marshal                                               *)
(* ---------------------------------------------------------------- *)

let test_msp005 () =
  check_fires "Obj.magic" "MSP005" (lint ~file:"lib/core/foo.ml" "let f x = Obj.magic x");
  check_fires "Marshal" "MSP005"
    (lint ~file:"test/foo.ml" "let f x = Marshal.to_string x []");
  check_fires "module alias" "MSP005" (lint ~file:"lib/core/foo.ml" "module M = Marshal");
  check_silent "clean module" "MSP005" (lint ~file:"lib/core/foo.ml" "let f x = x + 1")

(* ---------------------------------------------------------------- *)
(* MSP006: .mli presence                                             *)
(* ---------------------------------------------------------------- *)

let test_msp006 () =
  check_fires "lib module without mli" "MSP006" (lint_nomli ~file:"lib/core/foo.ml" "let x = 1");
  check_silent "mli present" "MSP006" (lint ~file:"lib/core/foo.ml" ~intf:"val x : int" "let x = 1");
  check_silent "binaries need no mli" "MSP006" (lint_nomli ~file:"bin/main.ml" "let x = 1");
  check_silent "tests need no mli" "MSP006" (lint_nomli ~file:"test/foo.ml" "let x = 1")

(* ---------------------------------------------------------------- *)
(* MSP007: raise contracts                                           *)
(* ---------------------------------------------------------------- *)

let test_msp007 () =
  let raising = "let find x = if x < 0 then invalid_arg \"neg\" else x" in
  check_fires "exported raising fn, no doc" "MSP007"
    (lint ~file:"lib/core/foo.ml" ~intf:"val find : int -> int" raising);
  check_silent "@raise documented" "MSP007"
    (lint ~file:"lib/core/foo.ml"
       ~intf:"val find : int -> int\n(** @raise Invalid_argument on negative input. *)" raising);
  check_silent "_exn suffix carries the contract" "MSP007"
    (lint ~file:"lib/core/foo.ml" ~intf:"val find_exn : int -> int"
       "let find_exn x = if x < 0 then invalid_arg \"neg\" else x");
  check_silent "unexported helper" "MSP007"
    (lint ~file:"lib/core/foo.ml" ~intf:"val other : int" raising);
  check_silent "raise Exit is local control flow" "MSP007"
    (lint ~file:"lib/core/foo.ml" ~intf:"val find : int array -> bool"
       "let find a = try Array.iter (fun x -> if x = 0 then raise Exit) a; false with Exit -> true");
  check_silent "raise under try is assumed caught" "MSP007"
    (lint ~file:"lib/core/foo.ml" ~intf:"val find : int -> int"
       "exception E\nlet find x = try if x < 0 then raise E else x with E -> 0")

(* ---------------------------------------------------------------- *)
(* MSP008: Domain.spawn outside the pool                             *)
(* ---------------------------------------------------------------- *)

let test_msp008 () =
  check_fires "raw spawn in library code" "MSP008"
    (lint ~file:"lib/parallel/foo.ml"
       "let f () = Domain.join (Domain.spawn (fun () -> 1))");
  check_fires "qualified spawn" "MSP008"
    (lint ~file:"lib/core/foo.ml" "let f () = Stdlib.Domain.spawn (fun () -> ())");
  check_fires "spawn in bench code" "MSP008"
    (lint ~file:"bench/foo.ml" "let f () = Domain.spawn (fun () -> ())");
  check_silent "pool.ml is the blessed home" "MSP008"
    (lint ~file:"lib/prelude/pool.ml" "let f () = Domain.spawn (fun () -> ())");
  check_silent "pool consumers are clean" "MSP008"
    (lint ~file:"lib/parallel/foo.ml"
       "let f p ~n g = Pool.parallel_for_ranges p ~n g");
  check_silent "other Domain functions are fine" "MSP008"
    (lint ~file:"lib/prelude/foo.ml" "let f () = Domain.recommended_domain_count ()");
  check_silent "lint.allow escape" "MSP008"
    (lint ~file:"lib/core/foo.ml"
       "let f () = Domain.spawn (fun () -> ()) [@@lint.allow \"MSP008\"]")

(* ---------------------------------------------------------------- *)
(* MSP009: file I/O outside the durability layer                     *)
(* ---------------------------------------------------------------- *)

let test_msp009 () =
  check_fires "open_out in library code" "MSP009"
    (lint ~file:"lib/dynamic/foo.ml" "let f path = open_out path");
  check_fires "open_in_bin" "MSP009"
    (lint ~file:"lib/core/foo.ml" "let f path = open_in_bin path");
  check_fires "Unix.openfile" "MSP009"
    (lint ~file:"lib/dynamic/foo.ml"
       "let f path = Unix.openfile path [ Unix.O_WRONLY ] 0o644");
  check_silent "journal.ml is the blessed home" "MSP009"
    (lint ~file:"lib/prelude/journal.ml"
       "let f path = Unix.openfile path [ Unix.O_WRONLY ] 0o644");
  check_silent "graph_io.ml keeps its exemption" "MSP009"
    (lint ~file:"lib/graph/graph_io.ml" "let f path = open_in path");
  check_silent "bench code may do I/O" "MSP009"
    (lint ~file:"bench/foo.ml" "let f path = open_out path");
  check_silent "test code may do I/O" "MSP009"
    (lint ~file:"test/foo.ml" "let f path = open_out path");
  check_silent "bin code may do I/O" "MSP009"
    (lint ~file:"bin/main.ml" "let f path = open_out path");
  check_silent "Journal consumers are clean" "MSP009"
    (lint ~file:"lib/dynamic/foo.ml"
       "let f path = Journal.open_writer ~sync_every:1 path")

(* ---------------------------------------------------------------- *)
(* MSP010: raw Bigarray unsafe access outside the blessed lanes      *)
(* ---------------------------------------------------------------- *)

let test_msp010 () =
  check_fires "unsafe_get in library code" "MSP010"
    (lint ~file:"lib/core/foo.ml" "let f a i = Bigarray.Array1.unsafe_get a i");
  check_fires "unsafe_set" "MSP010"
    (lint ~file:"lib/dynamic/foo.ml" "let f a i v = Bigarray.Array1.unsafe_set a i v");
  check_fires "unqualified Array1 (open Bigarray)" "MSP010"
    (lint ~file:"lib/core/foo.ml" "open Bigarray\nlet f a i = Array1.unsafe_get a i");
  check_fires "Genarray" "MSP010"
    (lint ~file:"lib/core/foo.ml" "let f a i = Bigarray.Genarray.unsafe_get a i");
  check_fires "test code is not exempt" "MSP010"
    (lint ~file:"test/foo.ml" "let f a i = Bigarray.Array1.unsafe_get a i");
  check_silent "bigvec.ml is a blessed lane" "MSP010"
    (lint ~file:"lib/prelude/bigvec.ml" "let f a i = Bigarray.Array1.unsafe_get a i");
  check_silent "graph.ml is a blessed lane" "MSP010"
    (lint ~file:"lib/graph/graph.ml" "let f a i = Bigarray.Array1.unsafe_get a i");
  check_silent "checked Array1.get is fine" "MSP010"
    (lint ~file:"lib/core/foo.ml" "let f a i = Bigarray.Array1.get a i");
  check_silent "Bigvec's own unsafe accessor states its contract" "MSP010"
    (lint ~file:"lib/core/foo.ml" "let f a i = Bigvec.unsafe_get a i");
  check_silent "heap Array.unsafe_get is out of scope" "MSP010"
    (lint ~file:"lib/core/foo.ml" "let f a i = Array.unsafe_get a i")

(* ---------------------------------------------------------------- *)
(* suppression: [@lint.allow] and the baseline                       *)
(* ---------------------------------------------------------------- *)
(* MSP011: raw socket / fd I/O outside the serve funnel              *)
(* ---------------------------------------------------------------- *)

let test_msp011 () =
  check_fires "Unix.socket in library code" "MSP011"
    (lint ~file:"lib/dynamic/foo.ml"
       "let f () = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0");
  check_fires "Unix.connect" "MSP011"
    (lint ~file:"lib/core/foo.ml" "let f fd a = Unix.connect fd a");
  check_fires "Unix.read" "MSP011"
    (lint ~file:"lib/dynamic/foo.ml" "let f fd b = Unix.read fd b 0 10");
  check_fires "Unix.select" "MSP011"
    (lint ~file:"lib/matching/foo.ml" "let f fd = Unix.select [ fd ] [] [] 1.0");
  check_fires "UnixLabels spelling" "MSP011"
    (lint ~file:"lib/core/foo.ml" "let f fd a = UnixLabels.bind fd ~addr:a");
  check_silent "lib/server owns the socket surface" "MSP011"
    (lint ~file:"lib/server/conn.ml" "let f fd b = Unix.read fd b 0 10");
  check_silent "journal.ml writes its own fd" "MSP011"
    (lint ~file:"lib/prelude/journal.ml"
       "let f fd s = Unix.write_substring fd s 0 (String.length s)");
  check_silent "graph_io.ml reads its own fd" "MSP011"
    (lint ~file:"lib/graph/graph_io.ml" "let f fd b = Unix.read fd b 0 10");
  check_silent "bench code may use sockets" "MSP011"
    (lint ~file:"bench/serve_faults.ml"
       "let f () = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0");
  check_silent "bin code may use sockets" "MSP011"
    (lint ~file:"bin/main.ml" "let f fd a = Unix.connect fd a");
  check_silent "test code may use sockets" "MSP011"
    (lint ~file:"test/foo.ml" "let f fd b = Unix.read fd b 0 10");
  check_silent "non-fd Unix calls are out of scope" "MSP011"
    (lint ~file:"lib/prelude/clock.ml" "let f () = Unix.gettimeofday ()")

(* ---------------------------------------------------------------- *)

let test_allow () =
  check_silent "binding-level [@@lint.allow]" "MSP002"
    (lint ~file:"lib/graph/foo.ml" "let f l = List.sort compare l [@@lint.allow \"MSP002\"]");
  check_silent "expression-level [@lint.allow]" "MSP002"
    (lint ~file:"lib/graph/foo.ml" "let f l = List.sort (compare [@lint.allow \"MSP002\"]) l");
  check_silent "floating [@@@lint.allow]" "MSP002"
    (lint ~file:"lib/graph/foo.ml" "[@@@lint.allow \"MSP002\"]\nlet f l = List.sort compare l");
  check_silent "wildcard" "MSP002"
    (lint ~file:"lib/graph/foo.ml" "let f l = List.sort compare l [@@lint.allow \"*\"]");
  (* an allow for a different code must not leak *)
  check_fires "allow is code-specific" "MSP002"
    (lint ~file:"lib/graph/foo.ml" "let f l = List.sort compare l [@@lint.allow \"MSP004\"]");
  (* ...and an allow span must not cover siblings *)
  let two =
    lint ~file:"lib/graph/foo.ml"
      "let f l = List.sort compare l [@@lint.allow \"MSP002\"]\nlet g l = List.sort compare l"
  in
  Alcotest.(check (list string)) "sibling still caught" [ "MSP002" ] (codes two)

let test_baseline () =
  let findings = lint ~file:"lib/graph/foo.ml" "let f l = List.sort compare l" in
  check_fires "precondition" "MSP002" findings;
  let key = Lint_types.baseline_key (List.hd findings) in
  let base = Lint_baseline.of_string (key ^ "\n# a comment\n") in
  let live, baselined, unused = Lint_baseline.apply base findings in
  Alcotest.(check int) "baselined" 1 (List.length baselined);
  Alcotest.(check int) "live" 0 (List.length live);
  Alcotest.(check int) "no stale entries" 0 (List.length unused);
  let stale = Lint_baseline.of_string "lib/nowhere.ml [MSP001] ghost\n" in
  let live, _, unused = Lint_baseline.apply stale findings in
  Alcotest.(check int) "unrelated entry leaves finding live" 1 (List.length live);
  Alcotest.(check (list string)) "stale entry reported" [ "lib/nowhere.ml [MSP001] ghost" ] unused

(* ---------------------------------------------------------------- *)
(* engine plumbing                                                   *)
(* ---------------------------------------------------------------- *)

let test_plumbing () =
  (* parse errors surface as MSP000, never as exceptions *)
  check_fires "syntax error" "MSP000" (lint ~file:"lib/core/foo.ml" "let let let");
  (* findings carry 1-based lines and the rule's location *)
  (match lint ~file:"lib/graph/foo.ml" "let a = 1\nlet f l = List.sort compare l" with
  | [ f ] ->
      Alcotest.(check string) "code" "MSP002" f.Lint_types.code;
      Alcotest.(check int) "line" 2 f.Lint_types.line;
      Alcotest.(check bool) "column within line" true (f.Lint_types.col > 0)
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs));
  (* config round-trip: directives produce the same scoping as default *)
  let parsed =
    Lint_config.of_string "hot-dir lib/graph\nallow MSP001 lib/prelude/rng.ml\n# comment\n"
  in
  Alcotest.(check bool) "hot" true (Lint_config.in_hot_dir parsed "lib/graph/foo.ml");
  Alcotest.(check bool) "segment-aware prefix" false
    (Lint_config.in_hot_dir parsed "lib/graphics/foo.ml");
  Alcotest.(check bool) "allow disables" false
    (Lint_config.rule_enabled parsed ~code:"MSP001" ~file:"lib/prelude/rng.ml");
  (match Lint_config.of_string "no-such-directive x" with
  | exception Lint_config.Config_error _ -> ()
  | _ -> Alcotest.fail "expected Config_error");
  (* JSON mode output is self-describing *)
  let f =
    { Lint_types.file = "a.ml"; line = 3; col = 7; cnum = 40; code = "MSP005"; message = "no \"Obj\"" }
  in
  Alcotest.(check string) "json"
    {|{"file":"a.ml","line":3,"col":7,"code":"MSP005","message":"no \"Obj\""}|}
    (Lint_types.to_json f)

let () =
  Alcotest.run "msparlint"
    [
      ( "rules",
        [
          Alcotest.test_case "MSP001 random" `Quick test_msp001;
          Alcotest.test_case "MSP002 poly compare" `Quick test_msp002;
          Alcotest.test_case "MSP003 congest" `Quick test_msp003;
          Alcotest.test_case "MSP004 float log" `Quick test_msp004;
          Alcotest.test_case "MSP005 obj/marshal" `Quick test_msp005;
          Alcotest.test_case "MSP006 mli" `Quick test_msp006;
          Alcotest.test_case "MSP007 raise contract" `Quick test_msp007;
          Alcotest.test_case "MSP008 domain spawn" `Quick test_msp008;
          Alcotest.test_case "MSP009 file io" `Quick test_msp009;
          Alcotest.test_case "MSP010 bigarray unsafe" `Quick test_msp010;
          Alcotest.test_case "MSP011 socket io" `Quick test_msp011;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "lint.allow" `Quick test_allow;
          Alcotest.test_case "baseline" `Quick test_baseline;
        ] );
      ("engine", [ Alcotest.test_case "plumbing" `Quick test_plumbing ]);
    ]
