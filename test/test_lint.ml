(* msparlint rule engine: each rule must fire on a minimal bad snippet and
   stay silent on its good twin; [@lint.allow] and the baseline file must
   suppress findings.  All fixtures are inline strings — the lint engine
   parses sources, it never compiles them. *)

open Msparlint_lib

let cfg = Lint_config.default

(* Lint a fixture as if it lived at [file]; [intf] is the sibling interface
   source.  The default is an empty (but present) .mli so that lib/ fixtures
   exercise one rule at a time instead of also tripping MSP006; use
   [lint_nomli] to model a missing interface. *)
let lint ?(intf = "") ~file source =
  Lint_engine.lint_impl cfg ~file ~source ~mli:(Some intf)

let lint_nomli ~file source = Lint_engine.lint_impl cfg ~file ~source ~mli:None

let codes findings = List.map (fun f -> f.Lint_types.code) findings
let fires code findings = List.exists (fun f -> String.equal f.Lint_types.code code) findings

let check_fires msg code findings =
  Alcotest.(check bool) (msg ^ " fires " ^ code) true (fires code findings)

let check_silent msg code findings =
  Alcotest.(check bool) (msg ^ " silent on " ^ code) false (fires code findings)

(* ---------------------------------------------------------------- *)
(* MSP001: Stdlib.Random                                             *)
(* ---------------------------------------------------------------- *)

let test_msp001 () =
  check_fires "Random.int" "MSP001" (lint ~file:"lib/core/foo.ml" "let x = Random.int 5");
  check_fires "Random.self_init" "MSP001"
    (lint ~file:"bench/foo.ml" "let () = Random.self_init ()");
  check_fires "open Random" "MSP001" (lint ~file:"lib/core/foo.ml" "open Random\nlet x = int 5");
  check_silent "rng.ml is the blessed home" "MSP001"
    (lint ~file:"lib/prelude/rng.ml" "let x = Random.int 5");
  check_silent "seeded Rng" "MSP001"
    (lint ~file:"lib/core/foo.ml" "let x r = Rng.int r 5")

(* ---------------------------------------------------------------- *)
(* MSP002: polymorphic compare in hot dirs                           *)
(* ---------------------------------------------------------------- *)

let test_msp002 () =
  check_fires "bare compare" "MSP002"
    (lint ~file:"lib/graph/foo.ml" "let f l = List.sort compare l");
  check_fires "bare min" "MSP002" (lint ~file:"lib/prelude/foo.ml" "let f a b = min a b");
  check_fires "Stdlib.max" "MSP002" (lint ~file:"lib/core/foo.ml" "let f a b = Stdlib.max a b");
  check_fires "Hashtbl.hash" "MSP002"
    (lint ~file:"lib/parallel/foo.ml" "let f x = Hashtbl.hash x");
  check_fires "tuple =" "MSP002" (lint ~file:"lib/graph/foo.ml" "let f a b c = (a, b) = c");
  check_silent "int = is monomorphic enough" "MSP002"
    (lint ~file:"lib/graph/foo.ml" "let f (a : int) b = a = b");
  check_silent "Int.compare" "MSP002"
    (lint ~file:"lib/graph/foo.ml" "let f l = List.sort Int.compare l");
  check_silent "Float.max" "MSP002" (lint ~file:"lib/graph/foo.ml" "let f a b = Float.max a b");
  check_silent "cold directory" "MSP002"
    (lint ~file:"lib/dynamic/foo.ml" "let f l = List.sort compare l");
  check_silent "test code is not hot" "MSP002"
    (lint ~file:"test/foo.ml" "let f a b c = (a, b) = c")

(* ---------------------------------------------------------------- *)
(* MSP003: CONGEST fidelity                                          *)
(* ---------------------------------------------------------------- *)

let test_msp003 () =
  check_fires "adjacency access in protocol code" "MSP003"
    (lint ~file:"lib/distsim/proto.ml" "let f g v = Graph.iter_neighbors g v (fun _ -> ())");
  check_fires "degree-free accessor" "MSP003"
    (lint ~file:"lib/distsim/proto.ml" "let f g u v = Graph.has_edge g u v");
  check_silent "network.ml is the substrate" "MSP003"
    (lint ~file:"lib/distsim/network.ml" "let f g v = Graph.iter_neighbors g v (fun _ -> ())");
  check_silent "outside distsim" "MSP003"
    (lint ~file:"lib/matching/foo.ml" "let f g v = Graph.iter_neighbors g v (fun _ -> ())");
  check_silent "metadata is free" "MSP003" (lint ~file:"lib/distsim/proto.ml" "let f g = Graph.n g")

(* ---------------------------------------------------------------- *)
(* MSP004: float log feeding integer rounding                        *)
(* ---------------------------------------------------------------- *)

let test_msp004 () =
  (* the exact PR 2 ceil_log2 regression *)
  check_fires "float ceil_log2" "MSP004"
    (lint ~file:"lib/distsim/network.ml"
       "let ceil_log2 n = int_of_float (ceil (log (float_of_int n) /. log 2.))");
  check_fires "truncate of **" "MSP004"
    (lint ~file:"lib/core/foo.ml" "let f k = truncate (2.0 ** float_of_int k)");
  check_fires "log-ratio idiom" "MSP004"
    (lint ~file:"lib/core/foo.ml" "let f x = log x /. log 2.");
  check_silent "integer shifts" "MSP004"
    (lint ~file:"lib/distsim/network.ml"
       "let ceil_log2 n =\n  let rec go k p = if p >= n then k else go (k + 1) (p lsl 1) in\n  go 0 1");
  check_silent "log-free rounding" "MSP004"
    (lint ~file:"lib/core/foo.ml" "let f eps = int_of_float (ceil (1.0 /. eps))")

(* ---------------------------------------------------------------- *)
(* MSP005: Obj/Marshal                                               *)
(* ---------------------------------------------------------------- *)

let test_msp005 () =
  check_fires "Obj.magic" "MSP005" (lint ~file:"lib/core/foo.ml" "let f x = Obj.magic x");
  check_fires "Marshal" "MSP005"
    (lint ~file:"test/foo.ml" "let f x = Marshal.to_string x []");
  check_fires "module alias" "MSP005" (lint ~file:"lib/core/foo.ml" "module M = Marshal");
  check_silent "clean module" "MSP005" (lint ~file:"lib/core/foo.ml" "let f x = x + 1")

(* ---------------------------------------------------------------- *)
(* MSP006: .mli presence                                             *)
(* ---------------------------------------------------------------- *)

let test_msp006 () =
  check_fires "lib module without mli" "MSP006" (lint_nomli ~file:"lib/core/foo.ml" "let x = 1");
  check_silent "mli present" "MSP006" (lint ~file:"lib/core/foo.ml" ~intf:"val x : int" "let x = 1");
  check_silent "binaries need no mli" "MSP006" (lint_nomli ~file:"bin/main.ml" "let x = 1");
  check_silent "tests need no mli" "MSP006" (lint_nomli ~file:"test/foo.ml" "let x = 1")

(* ---------------------------------------------------------------- *)
(* MSP007: raise contracts                                           *)
(* ---------------------------------------------------------------- *)

let test_msp007 () =
  let raising = "let find x = if x < 0 then invalid_arg \"neg\" else x" in
  check_fires "exported raising fn, no doc" "MSP007"
    (lint ~file:"lib/core/foo.ml" ~intf:"val find : int -> int" raising);
  check_silent "@raise documented" "MSP007"
    (lint ~file:"lib/core/foo.ml"
       ~intf:"val find : int -> int\n(** @raise Invalid_argument on negative input. *)" raising);
  check_silent "_exn suffix carries the contract" "MSP007"
    (lint ~file:"lib/core/foo.ml" ~intf:"val find_exn : int -> int"
       "let find_exn x = if x < 0 then invalid_arg \"neg\" else x");
  check_silent "unexported helper" "MSP007"
    (lint ~file:"lib/core/foo.ml" ~intf:"val other : int" raising);
  check_silent "raise Exit is local control flow" "MSP007"
    (lint ~file:"lib/core/foo.ml" ~intf:"val find : int array -> bool"
       "let find a = try Array.iter (fun x -> if x = 0 then raise Exit) a; false with Exit -> true");
  check_silent "raise under try is assumed caught" "MSP007"
    (lint ~file:"lib/core/foo.ml" ~intf:"val find : int -> int"
       "exception E\nlet find x = try if x < 0 then raise E else x with E -> 0")

(* ---------------------------------------------------------------- *)
(* MSP008: Domain.spawn outside the pool                             *)
(* ---------------------------------------------------------------- *)

let test_msp008 () =
  check_fires "raw spawn in library code" "MSP008"
    (lint ~file:"lib/parallel/foo.ml"
       "let f () = Domain.join (Domain.spawn (fun () -> 1))");
  check_fires "qualified spawn" "MSP008"
    (lint ~file:"lib/core/foo.ml" "let f () = Stdlib.Domain.spawn (fun () -> ())");
  check_fires "spawn in bench code" "MSP008"
    (lint ~file:"bench/foo.ml" "let f () = Domain.spawn (fun () -> ())");
  check_silent "pool.ml is the blessed home" "MSP008"
    (lint ~file:"lib/prelude/pool.ml" "let f () = Domain.spawn (fun () -> ())");
  check_silent "pool consumers are clean" "MSP008"
    (lint ~file:"lib/parallel/foo.ml"
       "let f p ~n g = Pool.parallel_for_ranges p ~n g");
  check_silent "other Domain functions are fine" "MSP008"
    (lint ~file:"lib/prelude/foo.ml" "let f () = Domain.recommended_domain_count ()");
  check_silent "lint.allow escape" "MSP008"
    (lint ~file:"lib/core/foo.ml"
       "let f () = Domain.spawn (fun () -> ()) [@@lint.allow \"MSP008\"]")

(* ---------------------------------------------------------------- *)
(* MSP009: file I/O outside the durability layer                     *)
(* ---------------------------------------------------------------- *)

let test_msp009 () =
  check_fires "open_out in library code" "MSP009"
    (lint ~file:"lib/dynamic/foo.ml" "let f path = open_out path");
  check_fires "open_in_bin" "MSP009"
    (lint ~file:"lib/core/foo.ml" "let f path = open_in_bin path");
  check_fires "Unix.openfile" "MSP009"
    (lint ~file:"lib/dynamic/foo.ml"
       "let f path = Unix.openfile path [ Unix.O_WRONLY ] 0o644");
  check_silent "journal.ml is the blessed home" "MSP009"
    (lint ~file:"lib/prelude/journal.ml"
       "let f path = Unix.openfile path [ Unix.O_WRONLY ] 0o644");
  check_silent "graph_io.ml keeps its exemption" "MSP009"
    (lint ~file:"lib/graph/graph_io.ml" "let f path = open_in path");
  check_silent "bench code may do I/O" "MSP009"
    (lint ~file:"bench/foo.ml" "let f path = open_out path");
  check_silent "test code may do I/O" "MSP009"
    (lint ~file:"test/foo.ml" "let f path = open_out path");
  check_silent "bin code may do I/O" "MSP009"
    (lint ~file:"bin/main.ml" "let f path = open_out path");
  check_silent "Journal consumers are clean" "MSP009"
    (lint ~file:"lib/dynamic/foo.ml"
       "let f path = Journal.open_writer ~sync_every:1 path")

(* ---------------------------------------------------------------- *)
(* MSP010: raw Bigarray unsafe access outside the blessed lanes      *)
(* ---------------------------------------------------------------- *)

let test_msp010 () =
  check_fires "unsafe_get in library code" "MSP010"
    (lint ~file:"lib/core/foo.ml" "let f a i = Bigarray.Array1.unsafe_get a i");
  check_fires "unsafe_set" "MSP010"
    (lint ~file:"lib/dynamic/foo.ml" "let f a i v = Bigarray.Array1.unsafe_set a i v");
  check_fires "unqualified Array1 (open Bigarray)" "MSP010"
    (lint ~file:"lib/core/foo.ml" "open Bigarray\nlet f a i = Array1.unsafe_get a i");
  check_fires "Genarray" "MSP010"
    (lint ~file:"lib/core/foo.ml" "let f a i = Bigarray.Genarray.unsafe_get a i");
  check_fires "test code is not exempt" "MSP010"
    (lint ~file:"test/foo.ml" "let f a i = Bigarray.Array1.unsafe_get a i");
  check_silent "bigvec.ml is a blessed lane" "MSP010"
    (lint ~file:"lib/prelude/bigvec.ml" "let f a i = Bigarray.Array1.unsafe_get a i");
  check_silent "graph.ml is a blessed lane" "MSP010"
    (lint ~file:"lib/graph/graph.ml" "let f a i = Bigarray.Array1.unsafe_get a i");
  check_silent "checked Array1.get is fine" "MSP010"
    (lint ~file:"lib/core/foo.ml" "let f a i = Bigarray.Array1.get a i");
  check_silent "Bigvec's own unsafe accessor states its contract" "MSP010"
    (lint ~file:"lib/core/foo.ml" "let f a i = Bigvec.unsafe_get a i");
  check_silent "heap Array.unsafe_get is out of scope" "MSP010"
    (lint ~file:"lib/core/foo.ml" "let f a i = Array.unsafe_get a i")

(* ---------------------------------------------------------------- *)
(* suppression: [@lint.allow] and the baseline                       *)
(* ---------------------------------------------------------------- *)
(* MSP011: raw socket / fd I/O outside the serve funnel              *)
(* ---------------------------------------------------------------- *)

let test_msp011 () =
  check_fires "Unix.socket in library code" "MSP011"
    (lint ~file:"lib/dynamic/foo.ml"
       "let f () = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0");
  check_fires "Unix.connect" "MSP011"
    (lint ~file:"lib/core/foo.ml" "let f fd a = Unix.connect fd a");
  check_fires "Unix.read" "MSP011"
    (lint ~file:"lib/dynamic/foo.ml" "let f fd b = Unix.read fd b 0 10");
  check_fires "Unix.select" "MSP011"
    (lint ~file:"lib/matching/foo.ml" "let f fd = Unix.select [ fd ] [] [] 1.0");
  check_fires "UnixLabels spelling" "MSP011"
    (lint ~file:"lib/core/foo.ml" "let f fd a = UnixLabels.bind fd ~addr:a");
  check_silent "lib/server owns the socket surface" "MSP011"
    (lint ~file:"lib/server/conn.ml" "let f fd b = Unix.read fd b 0 10");
  check_silent "journal.ml writes its own fd" "MSP011"
    (lint ~file:"lib/prelude/journal.ml"
       "let f fd s = Unix.write_substring fd s 0 (String.length s)");
  check_silent "graph_io.ml reads its own fd" "MSP011"
    (lint ~file:"lib/graph/graph_io.ml" "let f fd b = Unix.read fd b 0 10");
  check_silent "bench code may use sockets" "MSP011"
    (lint ~file:"bench/serve_faults.ml"
       "let f () = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0");
  check_silent "bin code may use sockets" "MSP011"
    (lint ~file:"bin/main.ml" "let f fd a = Unix.connect fd a");
  check_silent "test code may use sockets" "MSP011"
    (lint ~file:"test/foo.ml" "let f fd b = Unix.read fd b 0 10");
  check_silent "non-fd Unix calls are out of scope" "MSP011"
    (lint ~file:"lib/prelude/clock.ml" "let f () = Unix.gettimeofday ()")

(* ---------------------------------------------------------------- *)

let test_allow () =
  check_silent "binding-level [@@lint.allow]" "MSP002"
    (lint ~file:"lib/graph/foo.ml" "let f l = List.sort compare l [@@lint.allow \"MSP002\"]");
  check_silent "expression-level [@lint.allow]" "MSP002"
    (lint ~file:"lib/graph/foo.ml" "let f l = List.sort (compare [@lint.allow \"MSP002\"]) l");
  check_silent "floating [@@@lint.allow]" "MSP002"
    (lint ~file:"lib/graph/foo.ml" "[@@@lint.allow \"MSP002\"]\nlet f l = List.sort compare l");
  check_silent "wildcard" "MSP002"
    (lint ~file:"lib/graph/foo.ml" "let f l = List.sort compare l [@@lint.allow \"*\"]");
  (* an allow for a different code must not leak *)
  check_fires "allow is code-specific" "MSP002"
    (lint ~file:"lib/graph/foo.ml" "let f l = List.sort compare l [@@lint.allow \"MSP004\"]");
  (* ...and an allow span must not cover siblings *)
  let two =
    lint ~file:"lib/graph/foo.ml"
      "let f l = List.sort compare l [@@lint.allow \"MSP002\"]\nlet g l = List.sort compare l"
  in
  Alcotest.(check (list string)) "sibling still caught" [ "MSP002" ] (codes two)

let test_baseline () =
  let findings = lint ~file:"lib/graph/foo.ml" "let f l = List.sort compare l" in
  check_fires "precondition" "MSP002" findings;
  let key = Lint_types.baseline_key (List.hd findings) in
  let base = Lint_baseline.of_string (key ^ "\n# a comment\n") in
  let live, baselined, unused = Lint_baseline.apply base findings in
  Alcotest.(check int) "baselined" 1 (List.length baselined);
  Alcotest.(check int) "live" 0 (List.length live);
  Alcotest.(check int) "no stale entries" 0 (List.length unused);
  let stale = Lint_baseline.of_string "lib/nowhere.ml [MSP001] ghost\n" in
  let live, _, unused = Lint_baseline.apply stale findings in
  Alcotest.(check int) "unrelated entry leaves finding live" 1 (List.length live);
  Alcotest.(check (list string)) "stale entry reported" [ "lib/nowhere.ml [MSP001] ghost" ] unused

(* ---------------------------------------------------------------- *)
(* MSP007: match-with-exception is recognised as a handler           *)
(* ---------------------------------------------------------------- *)

let test_msp007_match_exception () =
  (* a raise inside the scrutinee of a [match ... with exception] is
     routed into the exception arms, not out of the function *)
  check_silent "raise in scrutinee of match-with-exception" "MSP007"
    (lint ~file:"lib/core/foo.ml" ~intf:"val find : int -> int"
       "let find x =\n\
        \  match (if x < 0 then failwith \"neg\" else x) with\n\
        \  | v -> v\n\
        \  | exception Failure _ -> 0");
  (* ...but a raise in a result arm still escapes *)
  check_fires "raise in arm of match-with-exception" "MSP007"
    (lint ~file:"lib/core/foo.ml" ~intf:"val find : (unit -> int) -> int"
       "let find f =\n\
        \  match f () with\n\
        \  | exception Failure _ -> 0\n\
        \  | v -> if v = 0 then failwith \"zero\" else v");
  (* a plain match (no exception arm) does not swallow scrutinee raises *)
  check_fires "plain match is not a handler" "MSP007"
    (lint ~file:"lib/core/foo.ml" ~intf:"val find : int -> int"
       "let find x = match (if x < 0 then failwith \"neg\" else x) with v -> v")

(* ---------------------------------------------------------------- *)
(* typed rules: MSP012/13/14 over type-checked fixtures              *)
(* ---------------------------------------------------------------- *)

(* Type-check a fixture with the in-memory frontend, run the three typed
   rules, and apply the same [@lint.allow] suppression the driver does. *)
let typed_lint ~file source =
  match Lint_typed.typecheck_impl ~file source with
  | Error e -> Alcotest.failf "fixture %s does not type-check: %s" file e
  | Ok u ->
      Lint_engine.suppress_in_file ~file ~source
        (Lint_typed_rules.run cfg [ u ])

(* Minimal Pool signature: [norm_path] reduces both the real
   [Mspar_prelude__Pool] and this local stub to ["Pool.parallel_for_ranges"],
   so the fixture exercises the same entry-point match as production code. *)
let pool_stub =
  "module Pool = struct\n\
  \  let parallel_for_ranges _t ~chunks:_ ~n:_ f = f ~chunk:0 ~lo:0 ~hi:0\n\
   end\n"

let test_msp012 () =
  check_fires "captured array written in worker closure" "MSP012"
    (typed_lint ~file:"lib/core/fix.ml"
       (pool_stub
      ^ "let bad p n =\n\
         \  let acc = Array.make 4 0 in\n\
         \  Pool.parallel_for_ranges p ~chunks:4 ~n\n\
         \    (fun ~chunk:_ ~lo ~hi -> acc.(0) <- acc.(0) + hi - lo);\n\
         \  acc.(0)"));
  check_silent "closure-local state is private to the worker" "MSP012"
    (typed_lint ~file:"lib/core/fix.ml"
       (pool_stub
      ^ "let good p n =\n\
         \  Pool.parallel_for_ranges p ~chunks:4 ~n\n\
         \    (fun ~chunk:_ ~lo ~hi ->\n\
         \      let local = Array.make 4 0 in\n\
         \      local.(0) <- hi - lo)"));
  check_silent "Atomic is the blessed shared-state primitive" "MSP012"
    (typed_lint ~file:"lib/core/fix.ml"
       (pool_stub
      ^ "let counter = Atomic.make 0\n\
         let good p n =\n\
         \  Pool.parallel_for_ranges p ~chunks:4 ~n\n\
         \    (fun ~chunk:_ ~lo:_ ~hi:_ -> Atomic.incr counter)"));
  check_silent "justified [@@domain_safe] allowlists the binding" "MSP012"
    (typed_lint ~file:"lib/core/fix.ml"
       (pool_stub
      ^ "let safe p n =\n\
         \  let acc = Array.make 4 0 in\n\
         \  Pool.parallel_for_ranges p ~chunks:4 ~n\n\
         \    (fun ~chunk ~lo:_ ~hi -> acc.(chunk) <- hi);\n\
         \  acc.(0)\n\
         [@@domain_safe \"each chunk writes only its own slot\"]"));
  check_fires "[@@domain_safe] without a justification still fires" "MSP012"
    (typed_lint ~file:"lib/core/fix.ml"
       (pool_stub
      ^ "let unsafe p n =\n\
         \  let acc = Array.make 4 0 in\n\
         \  Pool.parallel_for_ranges p ~chunks:4 ~n\n\
         \    (fun ~chunk ~lo:_ ~hi -> acc.(chunk) <- hi);\n\
         \  acc.(0)\n\
         [@@domain_safe]"));
  check_silent "[@lint.allow] suppresses a typed finding" "MSP012"
    (typed_lint ~file:"lib/core/fix.ml"
       (pool_stub
      ^ "let bad p n =\n\
         \  let acc = Array.make 4 0 in\n\
         \  Pool.parallel_for_ranges p ~chunks:4 ~n\n\
         \    (fun ~chunk:_ ~lo ~hi -> acc.(0) <- acc.(0) + hi - lo);\n\
         \  acc.(0)\n\
         [@@lint.allow \"MSP012\"]"));
  (* part B: the write hides one call away from the closure *)
  check_fires "global write reachable from worker closure" "MSP012"
    (typed_lint ~file:"lib/core/fix.ml"
       (pool_stub
      ^ "let tally = ref 0\n\
         let bump n = tally := !tally + n\n\
         let bad p n =\n\
         \  Pool.parallel_for_ranges p ~chunks:2 ~n\n\
         \    (fun ~chunk:_ ~lo ~hi -> bump (hi - lo))"));
  (* reactor context: a global written both under Server.run and outside *)
  check_fires "global written inside and outside the reactor" "MSP012"
    (typed_lint ~file:"lib/server/fix.ml"
       "let pending = ref 0\n\
        let enqueue n = pending := !pending + n\n\
        module Server = struct\n\
        \  let run () = pending := 0\n\
        end\n\
        let tick () = enqueue 1")

let test_msp013 () =
  check_fires "tuple allocated per element in a hot map" "MSP013"
    (typed_lint ~file:"lib/core/fix.ml"
       "let pairs xs = List.map (fun x -> (x, x)) xs [@@hot]");
  check_silent "same code without [@@hot] is out of scope" "MSP013"
    (typed_lint ~file:"lib/core/fix.ml"
       "let pairs xs = List.map (fun x -> (x, x)) xs");
  check_silent "allocation-free hot loop" "MSP013"
    (typed_lint ~file:"lib/core/fix.ml"
       "let sum a =\n\
        \  let s = ref 0 in\n\
        \  for i = 0 to Array.length a - 1 do\n\
        \    s := !s + Array.unsafe_get a i\n\
        \  done;\n\
        \  !s\n\
        [@@hot]");
  (* regression: a curried local helper is ONE closure, not a nest *)
  check_silent "curried local rec helper at depth 0" "MSP013"
    (typed_lint ~file:"lib/core/fix.ml"
       "let tri n =\n\
        \  let rec go s i = if i = 0 then s else go (s + i) (i - 1) in\n\
        \  go 0 n\n\
        [@@hot]");
  check_silent "optional-argument chain is the entry, not an allocation"
    "MSP013"
    (typed_lint ~file:"lib/core/fix.ml"
       "let scale ?(k = 2) a =\n\
        \  for i = 0 to Array.length a - 1 do\n\
        \    Array.unsafe_set a i (k * Array.unsafe_get a i)\n\
        \  done\n\
        [@@hot]");
  check_fires "ref cell allocated inside a hot loop" "MSP013"
    (typed_lint ~file:"lib/core/fix.ml"
       "let scan a =\n\
        \  let t = ref 0 in\n\
        \  for i = 0 to Array.length a - 1 do\n\
        \    let c = ref a.(i) in\n\
        \    t := !t + !c\n\
        \  done;\n\
        \  !t\n\
        [@@hot]");
  check_fires "Printf formats (and allocates) anywhere in a hot fn" "MSP013"
    (typed_lint ~file:"lib/core/fix.ml"
       "let trace x = Printf.printf \"%d\\n\" x [@@hot]");
  check_silent "depth-0 result construction is fine" "MSP013"
    (typed_lint ~file:"lib/core/fix.ml"
       "let mk n = Bytes.create n [@@hot]");
  check_silent "[@lint.allow] suppresses a hot-alloc finding" "MSP013"
    (typed_lint ~file:"lib/core/fix.ml"
       "let pairs xs = List.map (fun x -> (x, x)) xs\n\
        [@@hot] [@@lint.allow \"MSP013\"]")

(* Minimal Graph surface: same [norm_path] story as the Pool stub. *)
let graph_stub =
  "module Graph = struct\n\
  \  let iter_neighbors_uncounted _g _v _f = ()\n\
  \  let neighbors_into_uncounted _g _v ~out:_ = 0\n\
  \  let add_probes _g _n = ()\n\
   end\n"

let test_msp014 () =
  check_fires "uncharged uncounted adjacency access" "MSP014"
    (typed_lint ~file:"lib/distsim/fix.ml"
       (graph_stub
      ^ "let peek g v = Graph.iter_neighbors_uncounted g v (fun _ -> ())"));
  check_silent "same-function charge dominates the access" "MSP014"
    (typed_lint ~file:"lib/distsim/fix.ml"
       (graph_stub
      ^ "let scan g v =\n\
         \  Graph.add_probes g 1;\n\
         \  Graph.iter_neighbors_uncounted g v (fun _ -> ())"));
  check_silent "charged-on-entry: every caller charges first" "MSP014"
    (typed_lint ~file:"lib/distsim/fix.ml"
       (graph_stub
      ^ "let inner g v = Graph.iter_neighbors_uncounted g v (fun _ -> ())\n\
         let outer g v =\n\
         \  Graph.add_probes g 1;\n\
         \  inner g v"));
  check_fires "one uncharged caller demotes the callee" "MSP014"
    (typed_lint ~file:"lib/distsim/fix.ml"
       (graph_stub
      ^ "let inner g v = Graph.iter_neighbors_uncounted g v (fun _ -> ())\n\
         let charged g v =\n\
         \  Graph.add_probes g 1;\n\
         \  inner g v\n\
         let uncharged g v = inner g v"));
  check_silent "network.ml is the substrate, not protocol code" "MSP014"
    (typed_lint ~file:"lib/distsim/network.ml"
       (graph_stub
      ^ "let peek g v = Graph.iter_neighbors_uncounted g v (fun _ -> ())"));
  check_silent "outside the CONGEST scope" "MSP014"
    (typed_lint ~file:"lib/matching/fix.ml"
       (graph_stub
      ^ "let peek g v = Graph.iter_neighbors_uncounted g v (fun _ -> ())"));
  check_silent "[@lint.allow] suppresses a probe finding" "MSP014"
    (typed_lint ~file:"lib/distsim/fix.ml"
       (graph_stub
      ^ "let peek g v = Graph.iter_neighbors_uncounted g v (fun _ -> ())\n\
         [@@lint.allow \"MSP014\"]"));
  (* probe-dirs extend the same discipline to the oracle layer *)
  check_fires "probe-dir: uncharged oracle accessor" "MSP014"
    (typed_lint ~file:"lib/lca/fix.ml"
       (graph_stub
      ^ "let gather g v ~out = Graph.neighbors_into_uncounted g v ~out"));
  check_silent "probe-dir: charge in the same function" "MSP014"
    (typed_lint ~file:"lib/lca/fix.ml"
       (graph_stub
      ^ "let gather g v ~out =\n\
         \  let d = Graph.neighbors_into_uncounted g v ~out in\n\
         \  Graph.add_probes g d;\n\
         \  d"));
  check_fires "probe-dir: bulk accessor is uncounted too" "MSP014"
    (typed_lint ~file:"lib/lca/fix.ml"
       (graph_stub
      ^ "let peek g v = Graph.iter_neighbors_uncounted g v (fun _ -> ())"))

(* ---------------------------------------------------------------- *)
(* discovery agreement and SARIF shape                               *)
(* ---------------------------------------------------------------- *)

let test_coverage () =
  (* the typed pass must account for every file the parsetree pass saw *)
  Alcotest.(check (list string))
    "typed pass missing a unit is a gap"
    [ "lib/core/b.ml" ]
    (Lint_typed.coverage_gaps
       ~sources:[ "lib/core/a.ml"; "lib/core/b.ml"; "lib/core/a.mli" ]
       ~covered:[ "lib/core/a.ml" ]);
  Alcotest.(check (list string))
    "full coverage has no gaps" []
    (Lint_typed.coverage_gaps
       ~sources:[ "lib/core/a.ml" ]
       ~covered:[ "lib/core/a.ml" ]);
  (* extra typed units (e.g. generated wrappers) are not gaps *)
  Alcotest.(check (list string))
    "extra covered files are fine" []
    (Lint_typed.coverage_gaps ~sources:[]
       ~covered:[ "lib/core/wrapper.ml" ])

let test_sarif () =
  let f =
    {
      Lint_types.file = "lib/core/a.ml";
      line = 3;
      col = 7;
      cnum = 40;
      code = "MSP012";
      message = "racy \"write\"";
    }
  in
  let sarif =
    Lint_sarif.render
      ~rules:[ ("MSP012", "domain-race analysis") ]
      ~findings:[ f ]
  in
  let has needle =
    let nl = String.length needle and sl = String.length sarif in
    let rec go i = i + nl <= sl && (String.sub sarif i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "declares SARIF 2.1.0" true (has {|"version": "2.1.0"|});
  Alcotest.(check bool) "links the 2.1.0 schema" true (has "sarif-schema-2.1.0");
  Alcotest.(check bool) "names the driver" true (has {|"name": "msparlint"|});
  Alcotest.(check bool) "carries the rule id" true (has {|"ruleId": "MSP012"|});
  Alcotest.(check bool) "1-based line" true (has {|"startLine": 3|});
  Alcotest.(check bool) "1-based column" true (has {|"startColumn": 8|});
  Alcotest.(check bool) "escapes the message" true (has {|racy \"write\"|});
  Alcotest.(check bool) "repo-relative artifact uri" true
    (has {|"uri": "lib/core/a.ml"|})

(* ---------------------------------------------------------------- *)
(* engine plumbing                                                   *)
(* ---------------------------------------------------------------- *)

let test_plumbing () =
  (* parse errors surface as MSP000, never as exceptions *)
  check_fires "syntax error" "MSP000" (lint ~file:"lib/core/foo.ml" "let let let");
  (* findings carry 1-based lines and the rule's location *)
  (match lint ~file:"lib/graph/foo.ml" "let a = 1\nlet f l = List.sort compare l" with
  | [ f ] ->
      Alcotest.(check string) "code" "MSP002" f.Lint_types.code;
      Alcotest.(check int) "line" 2 f.Lint_types.line;
      Alcotest.(check bool) "column within line" true (f.Lint_types.col > 0)
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs));
  (* config round-trip: directives produce the same scoping as default *)
  let parsed =
    Lint_config.of_string "hot-dir lib/graph\nallow MSP001 lib/prelude/rng.ml\n# comment\n"
  in
  Alcotest.(check bool) "hot" true (Lint_config.in_hot_dir parsed "lib/graph/foo.ml");
  Alcotest.(check bool) "segment-aware prefix" false
    (Lint_config.in_hot_dir parsed "lib/graphics/foo.ml");
  Alcotest.(check bool) "allow disables" false
    (Lint_config.rule_enabled parsed ~code:"MSP001" ~file:"lib/prelude/rng.ml");
  (match Lint_config.of_string "no-such-directive x" with
  | exception Lint_config.Config_error _ -> ()
  | _ -> Alcotest.fail "expected Config_error");
  (* JSON mode output is self-describing *)
  let f =
    { Lint_types.file = "a.ml"; line = 3; col = 7; cnum = 40; code = "MSP005"; message = "no \"Obj\"" }
  in
  Alcotest.(check string) "json"
    {|{"file":"a.ml","line":3,"col":7,"code":"MSP005","message":"no \"Obj\""}|}
    (Lint_types.to_json f)

let () =
  Alcotest.run "msparlint"
    [
      ( "rules",
        [
          Alcotest.test_case "MSP001 random" `Quick test_msp001;
          Alcotest.test_case "MSP002 poly compare" `Quick test_msp002;
          Alcotest.test_case "MSP003 congest" `Quick test_msp003;
          Alcotest.test_case "MSP004 float log" `Quick test_msp004;
          Alcotest.test_case "MSP005 obj/marshal" `Quick test_msp005;
          Alcotest.test_case "MSP006 mli" `Quick test_msp006;
          Alcotest.test_case "MSP007 raise contract" `Quick test_msp007;
          Alcotest.test_case "MSP008 domain spawn" `Quick test_msp008;
          Alcotest.test_case "MSP009 file io" `Quick test_msp009;
          Alcotest.test_case "MSP010 bigarray unsafe" `Quick test_msp010;
          Alcotest.test_case "MSP011 socket io" `Quick test_msp011;
          Alcotest.test_case "MSP007 match-with-exception" `Quick
            test_msp007_match_exception;
        ] );
      ( "typed rules",
        [
          Alcotest.test_case "MSP012 domain race" `Quick test_msp012;
          Alcotest.test_case "MSP013 hot alloc" `Quick test_msp013;
          Alcotest.test_case "MSP014 probe accounting" `Quick test_msp014;
          Alcotest.test_case "coverage agreement" `Quick test_coverage;
          Alcotest.test_case "sarif shape" `Quick test_sarif;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "lint.allow" `Quick test_allow;
          Alcotest.test_case "baseline" `Quick test_baseline;
        ] );
      ("engine", [ Alcotest.test_case "plumbing" `Quick test_plumbing ]);
    ]
