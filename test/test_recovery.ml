(* Crash safety: journal codec, torn-tail handling, snapshot round-trips,
   audit + self-repair, and the recover-equivalence property.

   The QCheck property at the bottom is the central durability claim: for
   any op sequence and any crash point (torn-tail crash model,
   sync_every = 1), recovering and applying the remaining ops is
   indistinguishable from never having crashed — same graph edge set,
   same sparsifier edge set, same matching size. *)

open Mspar_prelude
open Mspar_dynamic

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* scratch-dir plumbing                                                *)
(* ------------------------------------------------------------------ *)

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter
        (fun e -> remove_tree (Filename.concat path e))
        (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let dir_counter = ref 0

let with_dir f =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mspar-rec-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  remove_tree dir;
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let append_bytes path s =
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc s;
  close_out oc

let flip_byte path pos =
  let s = Bytes.of_string (read_file path) in
  Bytes.set s pos (Char.chr (Char.code (Bytes.get s pos) lxor 0x5a));
  write_file path (Bytes.to_string s)

(* ------------------------------------------------------------------ *)
(* codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_codec_roundtrip () =
  let buf = Buffer.create 64 in
  Codec.add_uvarint buf 0;
  Codec.add_uvarint buf 127;
  Codec.add_uvarint buf 128;
  Codec.add_uvarint buf 0x3fff_ffff;
  Codec.add_int buf (-1);
  Codec.add_int buf 123456;
  Codec.add_int buf min_int;
  Codec.add_int64 buf 0x0123_4567_89ab_cdefL;
  Codec.add_float buf 0.3;
  Codec.add_float buf (-1e300);
  Codec.add_string buf "";
  Codec.add_string buf "torn\x00tail";
  let r = Codec.reader (Buffer.contents buf) in
  check_int "u0" 0 (Codec.read_uvarint r);
  check_int "u127" 127 (Codec.read_uvarint r);
  check_int "u128" 128 (Codec.read_uvarint r);
  check_int "u30" 0x3fff_ffff (Codec.read_uvarint r);
  check_int "i-1" (-1) (Codec.read_int r);
  check_int "i123456" 123456 (Codec.read_int r);
  check_int "imin" min_int (Codec.read_int r);
  Alcotest.(check int64) "i64" 0x0123_4567_89ab_cdefL (Codec.read_int64 r);
  Alcotest.(check (float 0.0)) "f" 0.3 (Codec.read_float r);
  Alcotest.(check (float 0.0)) "fneg" (-1e300) (Codec.read_float r);
  Alcotest.(check string) "s-empty" "" (Codec.read_string r);
  Alcotest.(check string) "s" "torn\x00tail" (Codec.read_string r);
  check_bool "at-end" true (Codec.at_end r)

let test_codec_truncated () =
  let buf = Buffer.create 16 in
  Codec.add_string buf "hello";
  let s = Buffer.contents buf in
  let short = String.sub s 0 (String.length s - 2) in
  check_bool "truncated raises" true
    (match Codec.read_string (Codec.reader short) with
    | exception Codec.Truncated -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* journal                                                             *)
(* ------------------------------------------------------------------ *)

let sample_records =
  Journal.
    [ Meta "config-bytes"; Insert (0, 1); Insert (2, 3); Epoch 2; Delete (0, 1) ]

let write_sample path =
  let w = Journal.open_writer ~sync_every:1 path in
  List.iter (Journal.append w) sample_records;
  Journal.close w

let test_journal_roundtrip () =
  with_dir (fun dir ->
      let path = Filename.concat dir "j.wal" in
      Journal.ensure_dir dir;
      write_sample path;
      let r = Journal.read path in
      check_bool "clean" true (r.Journal.torn = None);
      check_bool "records" true (r.Journal.records = sample_records);
      (* append-after-reopen keeps the earlier records *)
      let w = Journal.open_writer path in
      Journal.append w (Journal.Insert (7, 8));
      Journal.close w;
      let r2 = Journal.read path in
      check_bool "appended" true
        (r2.Journal.records = sample_records @ [ Journal.Insert (7, 8) ]))

let test_journal_missing () =
  with_dir (fun dir ->
      let r = Journal.read (Filename.concat dir "absent.wal") in
      check_bool "no records" true (r.Journal.records = []);
      check_bool "not torn" true (r.Journal.torn = None))

let test_journal_torn_tail () =
  with_dir (fun dir ->
      Journal.ensure_dir dir;
      let path = Filename.concat dir "j.wal" in
      write_sample path;
      append_bytes path "\x1fgarbage-that-is-not-a-frame";
      let r = Journal.read path in
      check_bool "torn reported" true (r.Journal.torn <> None);
      check_bool "records survive" true (r.Journal.records = sample_records);
      Journal.truncate_torn path r;
      let r2 = Journal.read path in
      check_bool "clean after truncate" true (r2.Journal.torn = None);
      check_bool "same records" true (r2.Journal.records = sample_records);
      check_int "file size = valid bytes"
        r.Journal.valid_bytes
        (String.length (read_file path)))

let test_journal_crc_corruption () =
  with_dir (fun dir ->
      Journal.ensure_dir dir;
      let path = Filename.concat dir "j.wal" in
      write_sample path;
      let size = String.length (read_file path) in
      (* flip a byte in the last frame: that record must drop, the
         prefix must survive, and nothing may raise *)
      flip_byte path (size - 2);
      let r = Journal.read path in
      check_bool "torn reported" true (r.Journal.torn <> None);
      check_int "prefix kept" 4 (List.length r.Journal.records);
      check_bool "prefix exact" true
        (r.Journal.records
        = Journal.[ Meta "config-bytes"; Insert (0, 1); Insert (2, 3); Epoch 2 ]))

let test_journal_header_damage () =
  with_dir (fun dir ->
      Journal.ensure_dir dir;
      let path = Filename.concat dir "j.wal" in
      write_sample path;
      flip_byte path 3;
      let r = Journal.read path in
      check_bool "no records from bad header" true (r.Journal.records = []);
      check_bool "torn reported" true (r.Journal.torn <> None))

let test_blob_roundtrip () =
  with_dir (fun dir ->
      Journal.ensure_dir dir;
      let path = Filename.concat dir "b.bin" in
      let payload = String.init 1000 (fun i -> Char.chr (i * 7 mod 256)) in
      Journal.write_blob path payload;
      check_bool "roundtrip" true (Journal.read_blob path = Some payload);
      flip_byte path 500;
      check_bool "corrupt -> None" true (Journal.read_blob path = None);
      check_bool "missing -> None" true
        (Journal.read_blob (Filename.concat dir "nope.bin") = None))

(* ------------------------------------------------------------------ *)
(* rng checkpointing                                                   *)
(* ------------------------------------------------------------------ *)

let test_rng_state_roundtrip () =
  let rng = Rng.create 99 in
  for _ = 1 to 57 do
    ignore (Rng.int rng 1000)
  done;
  let saved = Rng.state rng in
  let copy = Rng.of_state saved in
  let a = Array.init 20 (fun _ -> Rng.int rng 1_000_000) in
  let b = Array.init 20 (fun _ -> Rng.int copy 1_000_000) in
  check_bool "same stream" true (a = b);
  check_bool "bad length rejected" true
    (match Rng.of_state [| 1L; 2L |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "all-zero rejected" true
    (match Rng.of_state [| 0L; 0L; 0L; 0L |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* component snapshots                                                 *)
(* ------------------------------------------------------------------ *)

(* a deterministic mixed op sequence *)
let ops_of_seed seed ~n ~count =
  let rng = Rng.create seed in
  Array.init count (fun _ ->
      let u = Rng.int rng n and v = Rng.int rng n in
      let u, v = if u = v then (u, (v + 1) mod n) else (u, v) in
      (Rng.int rng 10 < 7, u, v))

let test_sparsifier_snapshot_roundtrip () =
  let n = 20 in
  let sp = Dyn_sparsifier.create (Rng.create 5) ~n ~delta:3 in
  Array.iter
    (fun (ins, u, v) ->
      ignore (if ins then Dyn_sparsifier.insert sp u v else Dyn_sparsifier.delete sp u v))
    (ops_of_seed 11 ~n ~count:80);
  let buf = Buffer.create 256 in
  Dyn_sparsifier.encode sp buf;
  let sp' = Dyn_sparsifier.decode (Codec.reader (Buffer.contents buf)) in
  check_bool "graph equal" true
    (Dyn_graph.edges (Dyn_sparsifier.graph sp)
    = Dyn_graph.edges (Dyn_sparsifier.graph sp'));
  check_bool "gdelta equal" true
    (Mspar_graph.Graph.edges (Dyn_sparsifier.sparsifier sp)
    = Mspar_graph.Graph.edges (Dyn_sparsifier.sparsifier sp'));
  (* the decoded copy replays bit-for-bit: same ops -> same marks *)
  Array.iter
    (fun (ins, u, v) ->
      let app sp =
        ignore
          (if ins then Dyn_sparsifier.insert sp u v
           else Dyn_sparsifier.delete sp u v)
      in
      app sp;
      app sp')
    (ops_of_seed 12 ~n ~count:60);
  check_bool "gdelta equal after divergence window" true
    (Mspar_graph.Graph.edges (Dyn_sparsifier.sparsifier sp)
    = Mspar_graph.Graph.edges (Dyn_sparsifier.sparsifier sp'));
  check_bool "audit clean" true (Audit.sparsifier sp' = [])

let test_matching_snapshot_roundtrip () =
  let n = 20 in
  let dm = Dyn_matching.create (Rng.create 6) ~n ~beta:4 ~eps:0.4 in
  Array.iter
    (fun (ins, u, v) ->
      ignore (if ins then Dyn_matching.insert dm u v else Dyn_matching.delete dm u v))
    (ops_of_seed 21 ~n ~count:80);
  let buf = Buffer.create 256 in
  Dyn_matching.encode dm buf;
  let dm' = Dyn_matching.decode (Codec.reader (Buffer.contents buf)) in
  check_int "size equal" (Dyn_matching.size dm) (Dyn_matching.size dm');
  Array.iter
    (fun (ins, u, v) ->
      let app dm =
        ignore
          (if ins then Dyn_matching.insert dm u v else Dyn_matching.delete dm u v)
      in
      app dm;
      app dm')
    (ops_of_seed 22 ~n ~count:60);
  check_int "size equal after more ops" (Dyn_matching.size dm)
    (Dyn_matching.size dm');
  check_bool "graphs equal" true
    (Dyn_graph.edges (Dyn_matching.graph dm)
    = Dyn_graph.edges (Dyn_matching.graph dm'));
  check_bool "audit clean" true (Audit.matching dm' = [])

let test_decode_rejects_corruption () =
  let n = 10 in
  let sp = Dyn_sparsifier.create (Rng.create 7) ~n ~delta:2 in
  ignore (Dyn_sparsifier.insert sp 0 1);
  ignore (Dyn_sparsifier.insert sp 1 2);
  let buf = Buffer.create 64 in
  Dyn_sparsifier.encode sp buf;
  let bytes = Bytes.of_string (Buffer.contents buf) in
  (* damage the payload: decode must raise, not return junk *)
  Bytes.set bytes 1 '\xff';
  check_bool "decode rejects" true
    (match Dyn_sparsifier.decode (Codec.reader (Bytes.to_string bytes)) with
    | exception (Failure _ | Codec.Truncated | Invalid_argument _) -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* audit + repair                                                      *)
(* ------------------------------------------------------------------ *)

let test_audit_detects_and_repairs () =
  let n = 16 in
  let sp = Dyn_sparsifier.create (Rng.create 8) ~n ~delta:3 in
  Array.iter
    (fun (ins, u, v) ->
      ignore (if ins then Dyn_sparsifier.insert sp u v else Dyn_sparsifier.delete sp u v))
    (ops_of_seed 31 ~n ~count:60);
  check_bool "healthy before" true (Audit.sparsifier sp = []);
  Dyn_sparsifier.inject_corruption sp;
  check_bool "corruption detected" true (Audit.sparsifier sp <> []);
  Dyn_sparsifier.repair sp;
  check_bool "healthy after repair" true (Audit.sparsifier sp = []);
  check_int "repair counted" 1 (Dyn_sparsifier.stats sp).Dyn_sparsifier.repairs

let test_graph_audit_and_checksum () =
  let g = Mspar_graph.Gen.gnp (Rng.create 17) ~n:40 ~p:0.2 in
  check_bool "audit clean" true (Mspar_graph.Graph.audit g = []);
  let g2 = Mspar_graph.Gen.gnp (Rng.create 18) ~n:40 ~p:0.2 in
  check_bool "checksum stable" true
    (Mspar_graph.Graph.checksum g = Mspar_graph.Graph.checksum g);
  check_bool "checksum discriminates" true
    (Mspar_graph.Graph.checksum g <> Mspar_graph.Graph.checksum g2)

(* ------------------------------------------------------------------ *)
(* durable orchestration                                               *)
(* ------------------------------------------------------------------ *)

let durable_config n seed =
  { Durable.n; delta = 4; beta = 4; eps = 0.4; multiplier = 2.0; seed }

let test_durable_create_recover () =
  with_dir (fun dir ->
      let d =
        Durable.create ~sync_every:1 ~snapshot_every:10 ~dir
          (durable_config 16 3)
      in
      Array.iter
        (fun (ins, u, v) ->
          ignore (if ins then Durable.insert d u v else Durable.delete d u v))
        (ops_of_seed 41 ~n:16 ~count:35);
      let edges = Dyn_graph.edges (Dyn_matching.graph (Durable.matching d)) in
      Durable.close d;
      check_bool "create refuses existing journal" true
        (match Durable.create ~dir (durable_config 16 3) with
        | exception Invalid_argument _ -> true
        | _ -> false);
      match Durable.recover dir with
      | Error e -> Alcotest.failf "recover: %s" e
      | Ok d' ->
          check_int "op count" 35 (Durable.op_count d');
          let s = Durable.stats d' in
          check_bool "used a snapshot" true (s.Durable.recovered_epoch = Some 30);
          check_int "replayed tail" 5 s.Durable.replayed;
          check_bool "same graph" true
            (Dyn_graph.edges (Dyn_matching.graph (Durable.matching d')) = edges);
          check_bool "audit clean" true (Durable.audit_now d' = []);
          Durable.close d')

let test_durable_recover_empty () =
  with_dir (fun dir ->
      check_bool "no journal -> Error" true
        (match Durable.recover dir with Error _ -> true | Ok _ -> false))

let test_durable_audit_repairs () =
  with_dir (fun dir ->
      let d = Durable.create ~sync_every:1 ~dir (durable_config 16 4) in
      Array.iter
        (fun (ins, u, v) ->
          ignore (if ins then Durable.insert d u v else Durable.delete d u v))
        (ops_of_seed 51 ~n:16 ~count:40);
      Dyn_sparsifier.inject_corruption (Durable.sparsifier d);
      let found = Durable.audit_now d in
      check_bool "detected" true (found <> []);
      let s = Durable.stats d in
      check_bool "repair counted" true (s.Durable.repairs >= 1);
      check_int "failure counted" 1 s.Durable.audit_failures;
      check_bool "healthy now" true (Durable.audit_now d = []);
      Durable.close d)

(* ------------------------------------------------------------------ *)
(* journal directory lockfile                                           *)
(* ------------------------------------------------------------------ *)

let is_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_lock_contended () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let l =
        match Journal.acquire_lock dir with
        | Ok l -> l
        | Error e -> Alcotest.failf "first acquire: %s" e
      in
      (match Journal.acquire_lock dir with
      | Error msg ->
          check_bool "error names the lock" true
            (is_substring (String.lowercase_ascii msg) "lock")
      | Ok _ -> Alcotest.fail "second acquire must fail while held");
      Journal.release_lock l;
      (* released: a fresh claim succeeds *)
      match Journal.acquire_lock dir with
      | Ok l' -> Journal.release_lock l'
      | Error e -> Alcotest.failf "acquire after release: %s" e)

let test_lock_stale_dead_pid () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      (* a pid that is genuinely dead: fork a child that exits at once *)
      let pid = Unix.fork () in
      if pid = 0 then Unix._exit 0;
      ignore (Unix.waitpid [] pid);
      write_file (Filename.concat dir "lock.pid") (string_of_int pid);
      (match Journal.acquire_lock dir with
      | Ok l -> Journal.release_lock l
      | Error e -> Alcotest.failf "stale (dead pid) lock must break: %s" e);
      (* unparsable lockfiles are stale too *)
      write_file (Filename.concat dir "lock.pid") "not-a-pid";
      match Journal.acquire_lock dir with
      | Ok l -> Journal.release_lock l
      | Error e -> Alcotest.failf "stale (garbage) lock must break: %s" e)

let test_lock_guards_durable () =
  with_dir (fun dir ->
      let d = Durable.create ~sync_every:1 ~dir (durable_config 16 5) in
      ignore (Durable.insert d 0 1);
      (* the live lock must turn concurrent recover into an Error *)
      (match Durable.recover dir with
      | Error msg -> check_bool "recover refused" true (is_substring msg "lock")
      | Ok d' ->
          Durable.close d';
          Alcotest.fail "recover must refuse a locked live dir");
      Durable.close d;
      (* close released the lock: recovery now proceeds *)
      match Durable.recover dir with
      | Ok d' ->
          check_int "state intact" 1 (Durable.op_count d');
          Durable.close d'
      | Error e -> Alcotest.failf "recover after close: %s" e)

(* ------------------------------------------------------------------ *)
(* at-most-once request dedup                                           *)
(* ------------------------------------------------------------------ *)

let test_dedup_basics () =
  with_dir (fun dir ->
      let d = Durable.create ~sync_every:1 ~dir (durable_config 16 6) in
      check_bool "fresh rid applies" true
        (Durable.insert_req d ~client:1 ~rid:1 0 1 = `Applied true);
      check_bool "resend answers the cached result" true
        (Durable.insert_req d ~client:1 ~rid:1 0 1 = `Duplicate true);
      check_bool "stale rid is a no-op" true
        (Durable.insert_req d ~client:1 ~rid:0 2 3 = `Duplicate false);
      check_bool "cached result tracks the op outcome" true
        (* inserting the same edge again: applied, but the graph did not
           change, and the cache must remember exactly that *)
        (Durable.insert_req d ~client:1 ~rid:2 0 1 = `Applied false);
      check_bool "resend of a false outcome stays false" true
        (Durable.insert_req d ~client:1 ~rid:2 0 1 = `Duplicate false);
      check_bool "clients are independent" true
        (Durable.delete_req d ~client:2 ~rid:1 0 1 = `Applied true);
      check_int "dedup hits counted" 3 (Durable.stats d).Durable.dedup_hits;
      check_int "only fresh rids hit the journal" 3 (Durable.op_count d);
      Durable.close d)

let test_dedup_survives_recover () =
  with_dir (fun dir ->
      let d =
        Durable.create ~sync_every:1 ~snapshot_every:4 ~dir
          (durable_config 16 7)
      in
      ignore (Durable.insert_req d ~client:9 ~rid:1 0 1);
      ignore (Durable.insert_req d ~client:9 ~rid:2 1 2);
      ignore (Durable.insert_req d ~client:9 ~rid:3 2 3);
      ignore (Durable.insert_req d ~client:9 ~rid:4 3 4);
      (* snapshot fired at 4 ops: the dedup table must live in the blob *)
      ignore (Durable.delete_req d ~client:9 ~rid:5 2 3);
      Durable.close d;
      match Durable.recover dir with
      | Error e -> Alcotest.failf "recover: %s" e
      | Ok d ->
          check_bool "last rid still deduped after recover" true
            (Durable.delete_req d ~client:9 ~rid:5 2 3 = `Duplicate true);
          check_bool "older rid stays stale" true
            (Durable.insert_req d ~client:9 ~rid:2 1 2 = `Duplicate false);
          check_bool "the stream continues" true
            (Durable.insert_req d ~client:9 ~rid:6 4 5 = `Applied true);
          Durable.close d)

(* ------------------------------------------------------------------ *)
(* the recover-equivalence property (satellite of Theorem 3.5's         *)
(* dynamic pipeline: crashes are unobservable)                          *)
(* ------------------------------------------------------------------ *)

let observe d =
  ( Dyn_graph.edges (Dyn_matching.graph (Durable.matching d)),
    Array.to_list (Mspar_graph.Graph.edges (Dyn_sparsifier.sparsifier (Durable.sparsifier d))),
    Dyn_matching.size (Durable.matching d) )

let qcheck_crash_recover_equivalence =
  QCheck.Test.make ~count:30
    ~name:"recover at any crash point + remaining ops == uncrashed run"
    QCheck.(triple (int_range 6 20) (int_range 10 60) (int_range 0 10_000))
    (fun (n, count, seed) ->
      let ops = ops_of_seed (seed + 1) ~n ~count in
      let trial = Rng.create (seed + 2) in
      with_dir (fun ref_dir ->
          let d =
            Durable.create ~sync_every:1 ~snapshot_every:9 ~audit_every:13
              ~dir:ref_dir (durable_config n seed)
          in
          Array.iter
            (fun (ins, u, v) ->
              ignore (if ins then Durable.insert d u v else Durable.delete d u v))
            ops;
          let reference = observe d in
          Durable.close d;
          with_dir (fun dir ->
              (* crash after k acked ops, with a torn partial record *)
              let k = 1 + Rng.int trial count in
              let d =
                Durable.create ~sync_every:1 ~snapshot_every:9 ~audit_every:13
                  ~dir (durable_config n seed)
              in
              Array.iter
                (fun (ins, u, v) ->
                  ignore
                    (if ins then Durable.insert d u v else Durable.delete d u v))
                (Array.sub ops 0 k);
              Durable.close d;
              let torn =
                String.init (1 + Rng.int trial 20) (fun _ ->
                    Char.chr (Rng.int trial 256))
              in
              append_bytes (Filename.concat dir "journal.wal") torn;
              match
                Durable.recover ~sync_every:1 ~snapshot_every:9 ~audit_every:13
                  dir
              with
              | Error e -> QCheck.Test.fail_reportf "recover failed: %s" e
              | Ok d ->
                  (* sync_every = 1: every acked op must have survived *)
                  if Durable.op_count d <> k then
                    QCheck.Test.fail_reportf "lost acked ops: %d <> %d"
                      (Durable.op_count d) k;
                  if Durable.audit_now d <> [] then
                    QCheck.Test.fail_reportf "recovered state fails audit";
                  Array.iter
                    (fun (ins, u, v) ->
                      ignore
                        (if ins then Durable.insert d u v
                         else Durable.delete d u v))
                    (Array.sub ops k (count - k));
                  let out = observe d in
                  Durable.close d;
                  out = reference)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mspar_recovery"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "truncated" `Quick test_codec_truncated;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "missing file" `Quick test_journal_missing;
          Alcotest.test_case "torn tail" `Quick test_journal_torn_tail;
          Alcotest.test_case "crc corruption" `Quick test_journal_crc_corruption;
          Alcotest.test_case "header damage" `Quick test_journal_header_damage;
          Alcotest.test_case "snapshot blob" `Quick test_blob_roundtrip;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "rng state" `Quick test_rng_state_roundtrip;
          Alcotest.test_case "sparsifier roundtrip" `Quick
            test_sparsifier_snapshot_roundtrip;
          Alcotest.test_case "matching roundtrip" `Quick
            test_matching_snapshot_roundtrip;
          Alcotest.test_case "decode rejects corruption" `Quick
            test_decode_rejects_corruption;
        ] );
      ( "audit",
        [
          Alcotest.test_case "detect + repair" `Quick
            test_audit_detects_and_repairs;
          Alcotest.test_case "graph audit + checksum" `Quick
            test_graph_audit_and_checksum;
        ] );
      ( "durable",
        [
          Alcotest.test_case "create/recover" `Quick test_durable_create_recover;
          Alcotest.test_case "recover empty dir" `Quick
            test_durable_recover_empty;
          Alcotest.test_case "audit repairs" `Quick test_durable_audit_repairs;
        ] );
      ( "lockfile",
        [
          Alcotest.test_case "contended" `Quick test_lock_contended;
          Alcotest.test_case "stale detection" `Quick test_lock_stale_dead_pid;
          Alcotest.test_case "guards durable" `Quick test_lock_guards_durable;
        ] );
      ( "dedup",
        [
          Alcotest.test_case "at-most-once basics" `Quick test_dedup_basics;
          Alcotest.test_case "survives recover" `Quick
            test_dedup_survives_recover;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ qcheck_crash_recover_equivalence ]
      );
    ]
