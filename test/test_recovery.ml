(* Crash safety: journal codec, torn-tail handling, snapshot round-trips,
   audit + self-repair, and the recover-equivalence property.

   The QCheck property at the bottom is the central durability claim: for
   any op sequence and any crash point (torn-tail crash model,
   sync_every = 1), recovering and applying the remaining ops is
   indistinguishable from never having crashed — same graph edge set,
   same sparsifier edge set, same matching size. *)

open Mspar_prelude
open Mspar_dynamic

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* scratch-dir plumbing                                                *)
(* ------------------------------------------------------------------ *)

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter
        (fun e -> remove_tree (Filename.concat path e))
        (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let dir_counter = ref 0

let with_dir f =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mspar-rec-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  remove_tree dir;
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let append_bytes path s =
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc s;
  close_out oc

let flip_byte path pos =
  let s = Bytes.of_string (read_file path) in
  Bytes.set s pos (Char.chr (Char.code (Bytes.get s pos) lxor 0x5a));
  write_file path (Bytes.to_string s)

(* ------------------------------------------------------------------ *)
(* codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_codec_roundtrip () =
  let buf = Buffer.create 64 in
  Codec.add_uvarint buf 0;
  Codec.add_uvarint buf 127;
  Codec.add_uvarint buf 128;
  Codec.add_uvarint buf 0x3fff_ffff;
  Codec.add_int buf (-1);
  Codec.add_int buf 123456;
  Codec.add_int buf min_int;
  Codec.add_int64 buf 0x0123_4567_89ab_cdefL;
  Codec.add_float buf 0.3;
  Codec.add_float buf (-1e300);
  Codec.add_string buf "";
  Codec.add_string buf "torn\x00tail";
  let r = Codec.reader (Buffer.contents buf) in
  check_int "u0" 0 (Codec.read_uvarint r);
  check_int "u127" 127 (Codec.read_uvarint r);
  check_int "u128" 128 (Codec.read_uvarint r);
  check_int "u30" 0x3fff_ffff (Codec.read_uvarint r);
  check_int "i-1" (-1) (Codec.read_int r);
  check_int "i123456" 123456 (Codec.read_int r);
  check_int "imin" min_int (Codec.read_int r);
  Alcotest.(check int64) "i64" 0x0123_4567_89ab_cdefL (Codec.read_int64 r);
  Alcotest.(check (float 0.0)) "f" 0.3 (Codec.read_float r);
  Alcotest.(check (float 0.0)) "fneg" (-1e300) (Codec.read_float r);
  Alcotest.(check string) "s-empty" "" (Codec.read_string r);
  Alcotest.(check string) "s" "torn\x00tail" (Codec.read_string r);
  check_bool "at-end" true (Codec.at_end r)

let test_codec_truncated () =
  let buf = Buffer.create 16 in
  Codec.add_string buf "hello";
  let s = Buffer.contents buf in
  let short = String.sub s 0 (String.length s - 2) in
  check_bool "truncated raises" true
    (match Codec.read_string (Codec.reader short) with
    | exception Codec.Truncated -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* journal                                                             *)
(* ------------------------------------------------------------------ *)

let sample_records =
  Journal.
    [ Meta "config-bytes"; Insert (0, 1); Insert (2, 3); Epoch 2; Delete (0, 1) ]

let write_sample path =
  let w = Journal.open_writer ~sync_every:1 path in
  List.iter (Journal.append w) sample_records;
  Journal.close w

let test_journal_roundtrip () =
  with_dir (fun dir ->
      let path = Filename.concat dir "j.wal" in
      Journal.ensure_dir dir;
      write_sample path;
      let r = Journal.read path in
      check_bool "clean" true (r.Journal.torn = None);
      check_bool "records" true (r.Journal.records = sample_records);
      (* append-after-reopen keeps the earlier records *)
      let w = Journal.open_writer path in
      Journal.append w (Journal.Insert (7, 8));
      Journal.close w;
      let r2 = Journal.read path in
      check_bool "appended" true
        (r2.Journal.records = sample_records @ [ Journal.Insert (7, 8) ]))

let test_journal_missing () =
  with_dir (fun dir ->
      let r = Journal.read (Filename.concat dir "absent.wal") in
      check_bool "no records" true (r.Journal.records = []);
      check_bool "not torn" true (r.Journal.torn = None))

let test_journal_torn_tail () =
  with_dir (fun dir ->
      Journal.ensure_dir dir;
      let path = Filename.concat dir "j.wal" in
      write_sample path;
      append_bytes path "\x1fgarbage-that-is-not-a-frame";
      let r = Journal.read path in
      check_bool "torn reported" true (r.Journal.torn <> None);
      check_bool "records survive" true (r.Journal.records = sample_records);
      Journal.truncate_torn path r;
      let r2 = Journal.read path in
      check_bool "clean after truncate" true (r2.Journal.torn = None);
      check_bool "same records" true (r2.Journal.records = sample_records);
      check_int "file size = valid bytes"
        r.Journal.valid_bytes
        (String.length (read_file path)))

let test_journal_crc_corruption () =
  with_dir (fun dir ->
      Journal.ensure_dir dir;
      let path = Filename.concat dir "j.wal" in
      write_sample path;
      let size = String.length (read_file path) in
      (* flip a byte in the last frame: that record must drop, the
         prefix must survive, and nothing may raise *)
      flip_byte path (size - 2);
      let r = Journal.read path in
      check_bool "torn reported" true (r.Journal.torn <> None);
      check_int "prefix kept" 4 (List.length r.Journal.records);
      check_bool "prefix exact" true
        (r.Journal.records
        = Journal.[ Meta "config-bytes"; Insert (0, 1); Insert (2, 3); Epoch 2 ]))

let test_journal_header_damage () =
  with_dir (fun dir ->
      Journal.ensure_dir dir;
      let path = Filename.concat dir "j.wal" in
      write_sample path;
      flip_byte path 3;
      let r = Journal.read path in
      check_bool "no records from bad header" true (r.Journal.records = []);
      check_bool "torn reported" true (r.Journal.torn <> None))

let test_blob_roundtrip () =
  with_dir (fun dir ->
      Journal.ensure_dir dir;
      let path = Filename.concat dir "b.bin" in
      let payload = String.init 1000 (fun i -> Char.chr (i * 7 mod 256)) in
      Journal.write_blob path payload;
      check_bool "roundtrip" true (Journal.read_blob path = Some payload);
      flip_byte path 500;
      check_bool "corrupt -> None" true (Journal.read_blob path = None);
      check_bool "missing -> None" true
        (Journal.read_blob (Filename.concat dir "nope.bin") = None))

(* ------------------------------------------------------------------ *)
(* rng checkpointing                                                   *)
(* ------------------------------------------------------------------ *)

let test_rng_state_roundtrip () =
  let rng = Rng.create 99 in
  for _ = 1 to 57 do
    ignore (Rng.int rng 1000)
  done;
  let saved = Rng.state rng in
  let copy = Rng.of_state saved in
  let a = Array.init 20 (fun _ -> Rng.int rng 1_000_000) in
  let b = Array.init 20 (fun _ -> Rng.int copy 1_000_000) in
  check_bool "same stream" true (a = b);
  check_bool "bad length rejected" true
    (match Rng.of_state [| 1L; 2L |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "all-zero rejected" true
    (match Rng.of_state [| 0L; 0L; 0L; 0L |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* component snapshots                                                 *)
(* ------------------------------------------------------------------ *)

(* a deterministic mixed op sequence *)
let ops_of_seed seed ~n ~count =
  let rng = Rng.create seed in
  Array.init count (fun _ ->
      let u = Rng.int rng n and v = Rng.int rng n in
      let u, v = if u = v then (u, (v + 1) mod n) else (u, v) in
      (Rng.int rng 10 < 7, u, v))

let test_sparsifier_snapshot_roundtrip () =
  let n = 20 in
  let sp = Dyn_sparsifier.create (Rng.create 5) ~n ~delta:3 in
  Array.iter
    (fun (ins, u, v) ->
      ignore (if ins then Dyn_sparsifier.insert sp u v else Dyn_sparsifier.delete sp u v))
    (ops_of_seed 11 ~n ~count:80);
  let buf = Buffer.create 256 in
  Dyn_sparsifier.encode sp buf;
  let sp' = Dyn_sparsifier.decode (Codec.reader (Buffer.contents buf)) in
  check_bool "graph equal" true
    (Dyn_graph.edges (Dyn_sparsifier.graph sp)
    = Dyn_graph.edges (Dyn_sparsifier.graph sp'));
  check_bool "gdelta equal" true
    (Mspar_graph.Graph.edges (Dyn_sparsifier.sparsifier sp)
    = Mspar_graph.Graph.edges (Dyn_sparsifier.sparsifier sp'));
  (* the decoded copy replays bit-for-bit: same ops -> same marks *)
  Array.iter
    (fun (ins, u, v) ->
      let app sp =
        ignore
          (if ins then Dyn_sparsifier.insert sp u v
           else Dyn_sparsifier.delete sp u v)
      in
      app sp;
      app sp')
    (ops_of_seed 12 ~n ~count:60);
  check_bool "gdelta equal after divergence window" true
    (Mspar_graph.Graph.edges (Dyn_sparsifier.sparsifier sp)
    = Mspar_graph.Graph.edges (Dyn_sparsifier.sparsifier sp'));
  check_bool "audit clean" true (Audit.sparsifier sp' = [])

let test_matching_snapshot_roundtrip () =
  let n = 20 in
  let dm = Dyn_matching.create (Rng.create 6) ~n ~beta:4 ~eps:0.4 in
  Array.iter
    (fun (ins, u, v) ->
      ignore (if ins then Dyn_matching.insert dm u v else Dyn_matching.delete dm u v))
    (ops_of_seed 21 ~n ~count:80);
  let buf = Buffer.create 256 in
  Dyn_matching.encode dm buf;
  let dm' = Dyn_matching.decode (Codec.reader (Buffer.contents buf)) in
  check_int "size equal" (Dyn_matching.size dm) (Dyn_matching.size dm');
  Array.iter
    (fun (ins, u, v) ->
      let app dm =
        ignore
          (if ins then Dyn_matching.insert dm u v else Dyn_matching.delete dm u v)
      in
      app dm;
      app dm')
    (ops_of_seed 22 ~n ~count:60);
  check_int "size equal after more ops" (Dyn_matching.size dm)
    (Dyn_matching.size dm');
  check_bool "graphs equal" true
    (Dyn_graph.edges (Dyn_matching.graph dm)
    = Dyn_graph.edges (Dyn_matching.graph dm'));
  check_bool "audit clean" true (Audit.matching dm' = [])

let test_decode_rejects_corruption () =
  let n = 10 in
  let sp = Dyn_sparsifier.create (Rng.create 7) ~n ~delta:2 in
  ignore (Dyn_sparsifier.insert sp 0 1);
  ignore (Dyn_sparsifier.insert sp 1 2);
  let buf = Buffer.create 64 in
  Dyn_sparsifier.encode sp buf;
  let bytes = Bytes.of_string (Buffer.contents buf) in
  (* damage the payload: decode must raise, not return junk *)
  Bytes.set bytes 1 '\xff';
  check_bool "decode rejects" true
    (match Dyn_sparsifier.decode (Codec.reader (Bytes.to_string bytes)) with
    | exception (Failure _ | Codec.Truncated | Invalid_argument _) -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* audit + repair                                                      *)
(* ------------------------------------------------------------------ *)

let test_audit_detects_and_repairs () =
  let n = 16 in
  let sp = Dyn_sparsifier.create (Rng.create 8) ~n ~delta:3 in
  Array.iter
    (fun (ins, u, v) ->
      ignore (if ins then Dyn_sparsifier.insert sp u v else Dyn_sparsifier.delete sp u v))
    (ops_of_seed 31 ~n ~count:60);
  check_bool "healthy before" true (Audit.sparsifier sp = []);
  Dyn_sparsifier.inject_corruption sp;
  check_bool "corruption detected" true (Audit.sparsifier sp <> []);
  Dyn_sparsifier.repair sp;
  check_bool "healthy after repair" true (Audit.sparsifier sp = []);
  check_int "repair counted" 1 (Dyn_sparsifier.stats sp).Dyn_sparsifier.repairs

let test_graph_audit_and_checksum () =
  let g = Mspar_graph.Gen.gnp (Rng.create 17) ~n:40 ~p:0.2 in
  check_bool "audit clean" true (Mspar_graph.Graph.audit g = []);
  let g2 = Mspar_graph.Gen.gnp (Rng.create 18) ~n:40 ~p:0.2 in
  check_bool "checksum stable" true
    (Mspar_graph.Graph.checksum g = Mspar_graph.Graph.checksum g);
  check_bool "checksum discriminates" true
    (Mspar_graph.Graph.checksum g <> Mspar_graph.Graph.checksum g2)

(* ------------------------------------------------------------------ *)
(* durable orchestration                                               *)
(* ------------------------------------------------------------------ *)

let durable_config n seed =
  { Durable.n; delta = 4; beta = 4; eps = 0.4; multiplier = 2.0; seed }

let test_durable_create_recover () =
  with_dir (fun dir ->
      let d =
        Durable.create ~sync_every:1 ~snapshot_every:10 ~dir
          (durable_config 16 3)
      in
      Array.iter
        (fun (ins, u, v) ->
          ignore (if ins then Durable.insert d u v else Durable.delete d u v))
        (ops_of_seed 41 ~n:16 ~count:35);
      let edges = Dyn_graph.edges (Dyn_matching.graph (Durable.matching d)) in
      Durable.close d;
      check_bool "create refuses existing journal" true
        (match Durable.create ~dir (durable_config 16 3) with
        | exception Invalid_argument _ -> true
        | _ -> false);
      match Durable.recover dir with
      | Error e -> Alcotest.failf "recover: %s" e
      | Ok d' ->
          check_int "op count" 35 (Durable.op_count d');
          let s = Durable.stats d' in
          check_bool "used a snapshot" true (s.Durable.recovered_epoch = Some 30);
          check_int "replayed tail" 5 s.Durable.replayed;
          check_bool "same graph" true
            (Dyn_graph.edges (Dyn_matching.graph (Durable.matching d')) = edges);
          check_bool "audit clean" true (Durable.audit_now d' = []);
          Durable.close d')

let test_durable_recover_empty () =
  with_dir (fun dir ->
      check_bool "no journal -> Error" true
        (match Durable.recover dir with Error _ -> true | Ok _ -> false))

let test_durable_audit_repairs () =
  with_dir (fun dir ->
      let d = Durable.create ~sync_every:1 ~dir (durable_config 16 4) in
      Array.iter
        (fun (ins, u, v) ->
          ignore (if ins then Durable.insert d u v else Durable.delete d u v))
        (ops_of_seed 51 ~n:16 ~count:40);
      Dyn_sparsifier.inject_corruption (Durable.sparsifier d);
      let found = Durable.audit_now d in
      check_bool "detected" true (found <> []);
      let s = Durable.stats d in
      check_bool "repair counted" true (s.Durable.repairs >= 1);
      check_int "failure counted" 1 s.Durable.audit_failures;
      check_bool "healthy now" true (Durable.audit_now d = []);
      Durable.close d)

(* ------------------------------------------------------------------ *)
(* journal directory lockfile                                           *)
(* ------------------------------------------------------------------ *)

let is_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_lock_contended () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let l =
        match Journal.acquire_lock dir with
        | Ok l -> l
        | Error e -> Alcotest.failf "first acquire: %s" e
      in
      (match Journal.acquire_lock dir with
      | Error msg ->
          check_bool "error names the lock" true
            (is_substring (String.lowercase_ascii msg) "lock")
      | Ok _ -> Alcotest.fail "second acquire must fail while held");
      Journal.release_lock l;
      (* released: a fresh claim succeeds *)
      match Journal.acquire_lock dir with
      | Ok l' -> Journal.release_lock l'
      | Error e -> Alcotest.failf "acquire after release: %s" e)

let test_lock_stale_dead_pid () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      (* a pid that is genuinely dead: fork a child that exits at once *)
      let pid = Unix.fork () in
      if pid = 0 then Unix._exit 0;
      ignore (Unix.waitpid [] pid);
      write_file (Filename.concat dir "lock.pid") (string_of_int pid);
      (match Journal.acquire_lock dir with
      | Ok l -> Journal.release_lock l
      | Error e -> Alcotest.failf "stale (dead pid) lock must break: %s" e);
      (* unparsable lockfiles are stale too *)
      write_file (Filename.concat dir "lock.pid") "not-a-pid";
      match Journal.acquire_lock dir with
      | Ok l -> Journal.release_lock l
      | Error e -> Alcotest.failf "stale (garbage) lock must break: %s" e)

let test_lock_guards_durable () =
  with_dir (fun dir ->
      let d = Durable.create ~sync_every:1 ~dir (durable_config 16 5) in
      ignore (Durable.insert d 0 1);
      (* the live lock must turn concurrent recover into an Error *)
      (match Durable.recover dir with
      | Error msg -> check_bool "recover refused" true (is_substring msg "lock")
      | Ok d' ->
          Durable.close d';
          Alcotest.fail "recover must refuse a locked live dir");
      Durable.close d;
      (* close released the lock: recovery now proceeds *)
      match Durable.recover dir with
      | Ok d' ->
          check_int "state intact" 1 (Durable.op_count d');
          Durable.close d'
      | Error e -> Alcotest.failf "recover after close: %s" e)

(* ------------------------------------------------------------------ *)
(* at-most-once request dedup                                           *)
(* ------------------------------------------------------------------ *)

let test_dedup_basics () =
  with_dir (fun dir ->
      let d = Durable.create ~sync_every:1 ~dir (durable_config 16 6) in
      check_bool "fresh rid applies" true
        (Durable.insert_req d ~client:1 ~rid:1 0 1 = `Applied true);
      check_bool "resend answers the cached result" true
        (Durable.insert_req d ~client:1 ~rid:1 0 1 = `Duplicate true);
      check_bool "stale rid is a no-op" true
        (Durable.insert_req d ~client:1 ~rid:0 2 3 = `Duplicate false);
      check_bool "cached result tracks the op outcome" true
        (* inserting the same edge again: applied, but the graph did not
           change, and the cache must remember exactly that *)
        (Durable.insert_req d ~client:1 ~rid:2 0 1 = `Applied false);
      check_bool "resend of a false outcome stays false" true
        (Durable.insert_req d ~client:1 ~rid:2 0 1 = `Duplicate false);
      check_bool "clients are independent" true
        (Durable.delete_req d ~client:2 ~rid:1 0 1 = `Applied true);
      check_int "dedup hits counted" 3 (Durable.stats d).Durable.dedup_hits;
      check_int "only fresh rids hit the journal" 3 (Durable.op_count d);
      Durable.close d)

let test_dedup_survives_recover () =
  with_dir (fun dir ->
      let d =
        Durable.create ~sync_every:1 ~snapshot_every:4 ~dir
          (durable_config 16 7)
      in
      ignore (Durable.insert_req d ~client:9 ~rid:1 0 1);
      ignore (Durable.insert_req d ~client:9 ~rid:2 1 2);
      ignore (Durable.insert_req d ~client:9 ~rid:3 2 3);
      ignore (Durable.insert_req d ~client:9 ~rid:4 3 4);
      (* snapshot fired at 4 ops: the dedup table must live in the blob *)
      ignore (Durable.delete_req d ~client:9 ~rid:5 2 3);
      Durable.close d;
      match Durable.recover dir with
      | Error e -> Alcotest.failf "recover: %s" e
      | Ok d ->
          check_bool "last rid still deduped after recover" true
            (Durable.delete_req d ~client:9 ~rid:5 2 3 = `Duplicate true);
          check_bool "older rid stays stale" true
            (Durable.insert_req d ~client:9 ~rid:2 1 2 = `Duplicate false);
          check_bool "the stream continues" true
            (Durable.insert_req d ~client:9 ~rid:6 4 5 = `Applied true);
          Durable.close d)

(* ------------------------------------------------------------------ *)
(* the recover-equivalence property (satellite of Theorem 3.5's         *)
(* dynamic pipeline: crashes are unobservable)                          *)
(* ------------------------------------------------------------------ *)

let observe d =
  ( Dyn_graph.edges (Dyn_matching.graph (Durable.matching d)),
    Array.to_list (Mspar_graph.Graph.edges (Dyn_sparsifier.sparsifier (Durable.sparsifier d))),
    Dyn_matching.size (Durable.matching d) )

let qcheck_crash_recover_equivalence =
  QCheck.Test.make ~count:30
    ~name:"recover at any crash point + remaining ops == uncrashed run"
    QCheck.(triple (int_range 6 20) (int_range 10 60) (int_range 0 10_000))
    (fun (n, count, seed) ->
      let ops = ops_of_seed (seed + 1) ~n ~count in
      let trial = Rng.create (seed + 2) in
      with_dir (fun ref_dir ->
          let d =
            Durable.create ~sync_every:1 ~snapshot_every:9 ~audit_every:13
              ~dir:ref_dir (durable_config n seed)
          in
          Array.iter
            (fun (ins, u, v) ->
              ignore (if ins then Durable.insert d u v else Durable.delete d u v))
            ops;
          let reference = observe d in
          Durable.close d;
          with_dir (fun dir ->
              (* crash after k acked ops, with a torn partial record *)
              let k = 1 + Rng.int trial count in
              let d =
                Durable.create ~sync_every:1 ~snapshot_every:9 ~audit_every:13
                  ~dir (durable_config n seed)
              in
              Array.iter
                (fun (ins, u, v) ->
                  ignore
                    (if ins then Durable.insert d u v else Durable.delete d u v))
                (Array.sub ops 0 k);
              Durable.close d;
              let torn =
                String.init (1 + Rng.int trial 20) (fun _ ->
                    Char.chr (Rng.int trial 256))
              in
              append_bytes (Filename.concat dir "journal.wal") torn;
              match
                Durable.recover ~sync_every:1 ~snapshot_every:9 ~audit_every:13
                  dir
              with
              | Error e -> QCheck.Test.fail_reportf "recover failed: %s" e
              | Ok d ->
                  (* sync_every = 1: every acked op must have survived *)
                  if Durable.op_count d <> k then
                    QCheck.Test.fail_reportf "lost acked ops: %d <> %d"
                      (Durable.op_count d) k;
                  if Durable.audit_now d <> [] then
                    QCheck.Test.fail_reportf "recovered state fails audit";
                  Array.iter
                    (fun (ins, u, v) ->
                      ignore
                        (if ins then Durable.insert d u v
                         else Durable.delete d u v))
                    (Array.sub ops k (count - k));
                  let out = observe d in
                  Durable.close d;
                  out = reference)))

(* ------------------------------------------------------------------ *)
(* lockfile epoch fencing (replication failover)                       *)
(* ------------------------------------------------------------------ *)

let test_lock_epoch_dead_holder () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let dead_pid =
        let pid = Unix.fork () in
        if pid = 0 then Unix._exit 0;
        ignore (Unix.waitpid [] pid);
        pid
      in
      (* a dead ex-holder that had promoted to epoch 2 *)
      write_file (Filename.concat dir "lock.pid")
        (Printf.sprintf "%d 2" dead_pid);
      (* a claimant from the past is refused even though the holder is
         dead: the fence outlives the process that raised it *)
      (match Journal.acquire_lock ~epoch:1 dir with
      | Error msg -> check_bool "refusal names the fence" true
          (is_substring msg "fenced")
      | Ok _ -> Alcotest.fail "stale-epoch claim must be fenced");
      (* a strictly newer epoch seizes the dir *)
      (match Journal.acquire_lock ~epoch:3 dir with
      | Ok l -> Journal.release_lock l
      | Error e -> Alcotest.failf "newer epoch must seize: %s" e);
      (* legacy single-token lockfiles read as epoch 0 *)
      write_file (Filename.concat dir "lock.pid") (string_of_int dead_pid);
      match Journal.acquire_lock ~epoch:1 dir with
      | Ok l -> Journal.release_lock l
      | Error e -> Alcotest.failf "legacy lockfile is epoch 0: %s" e)

(* the contended failover race: a promoted node fences out a stale
   primary that is still alive and still holding its lock *)
let test_lock_promote_vs_stale_primary () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let stale =
        match Journal.acquire_lock ~epoch:0 dir with
        | Ok l -> l
        | Error e -> Alcotest.failf "stale primary's claim: %s" e
      in
      (* promotion: epoch 1 seizes the dir from the live epoch-0 holder *)
      let promoted =
        match Journal.acquire_lock ~epoch:1 dir with
        | Ok l -> l
        | Error e -> Alcotest.failf "promotion must seize: %s" e
      in
      (* the stale primary retries with its old epoch: fenced, even
         though it believes it still owns the dir *)
      (match Journal.acquire_lock ~epoch:0 dir with
      | Error msg -> check_bool "stale retry fenced" true
          (is_substring msg "fenced")
      | Ok _ -> Alcotest.fail "stale primary must not reclaim the dir");
      (* refresh_lock_epoch raises the fence in place *)
      Journal.refresh_lock_epoch promoted 5;
      (match Journal.acquire_lock ~epoch:4 dir with
      | Error msg -> check_bool "refreshed fence holds" true
          (is_substring msg "fenced")
      | Ok _ -> Alcotest.fail "epoch 4 must be fenced after refresh to 5");
      Journal.release_lock promoted;
      Journal.release_lock stale)

(* ------------------------------------------------------------------ *)
(* position-addressed tailing (replication shipping)                   *)
(* ------------------------------------------------------------------ *)

let tail_records = [
  Journal.Meta "cfg";
  Journal.Insert (0, 1);
  Journal.Tagged (1, 1, Journal.Insert (2, 3));
  Journal.Delete (0, 1);
  Journal.Epoch 3;
  Journal.Tagged (2, 9, Journal.Delete (2, 3));
  Journal.Meta "note";
]

let write_journal path records =
  let w = Journal.open_writer ~sync_every:1 path in
  List.iter (Journal.append w) records;
  Journal.close w

(* every frame boundary of a journal, in order, ending at valid_bytes *)
let boundaries records =
  List.fold_left
    (fun acc r -> (List.hd acc + Journal.frame_size r) :: acc)
    [ Journal.header_bytes ] records
  |> List.rev

let test_tail_from_boundaries () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "journal.wal" in
      write_journal path tail_records;
      let r = Journal.read path in
      check_bool "clean journal" true (r.Journal.torn = None);
      let offs = boundaries tail_records in
      check_int "last boundary is the durable end" r.Journal.valid_bytes
        (List.nth offs (List.length tail_records));
      List.iteri
        (fun i off ->
          match Journal.tail_from path ~offset:off with
          | Error e -> Alcotest.failf "tail_from %d: %s" off e
          | Ok t ->
              check_int "suffix length" (List.length tail_records - i)
                (List.length t.Journal.tail_records);
              check_bool "suffix records" true
                (t.Journal.tail_records
                = List.filteri (fun j _ -> j >= i) tail_records);
              check_int "tail_next is the durable end" r.Journal.valid_bytes
                t.Journal.tail_next;
              check_bool "no torn verdict" true (t.Journal.tail_torn = None))
        offs;
      (* offset 0 is sugar for the first frame *)
      (match Journal.tail_from path ~offset:0 with
      | Ok t ->
          check_int "offset 0 = whole log" (List.length tail_records)
            (List.length t.Journal.tail_records)
      | Error e -> Alcotest.failf "tail_from 0: %s" e);
      (* a mid-frame offset is an error, never a resync *)
      (match Journal.tail_from path ~offset:(Journal.header_bytes + 1) with
      | Error msg -> check_bool "names the boundary" true
          (is_substring msg "boundary")
      | Ok _ -> Alcotest.fail "mid-frame offset must be refused");
      (* past the durable end is an error too *)
      match Journal.tail_from path ~offset:(r.Journal.valid_bytes + 64) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "offset past the durable end must be refused")

let test_tail_from_torn () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "journal.wal" in
      write_journal path tail_records;
      let clean = Journal.read path in
      append_bytes path "\x07garbage-torn-suffix";
      match Journal.tail_from path ~offset:Journal.header_bytes with
      | Error e -> Alcotest.failf "torn tail_from: %s" e
      | Ok t ->
          check_bool "torn reported" true (t.Journal.tail_torn <> None);
          check_int "stops at the old durable end" clean.Journal.valid_bytes
            t.Journal.tail_next;
          check_int "no phantom records" (List.length tail_records)
            (List.length t.Journal.tail_records))

(* the shipping invariant end-to-end at the journal layer: a raw
   [read_slice] of whole frames appended verbatim with [append_raw]
   reproduces the same records, byte for byte *)
let test_ship_slice_roundtrip () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let src = Filename.concat dir "src.wal" in
      let dst = Filename.concat dir "dst.wal" in
      write_journal src tail_records;
      let r = Journal.read src in
      let body =
        Journal.read_slice src ~pos:Journal.header_bytes
          ~len:(r.Journal.valid_bytes - Journal.header_bytes)
      in
      let w = Journal.open_writer ~sync_every:1 dst in
      Journal.append_raw w body;
      Journal.close w;
      let r' = Journal.read dst in
      check_bool "records identical" true
        (r.Journal.records = r'.Journal.records);
      check_int "files identical" r.Journal.valid_bytes r'.Journal.valid_bytes;
      check_bool "bytes identical" true (read_file src = read_file dst))

let qcheck_tail_from_suffix =
  let record_gen =
    QCheck.Gen.(
      oneof
        [
          map2 (fun u v -> Journal.Insert (u, v)) (int_range 0 50)
            (int_range 0 50);
          map2 (fun u v -> Journal.Delete (u, v)) (int_range 0 50)
            (int_range 0 50);
          map (fun e -> Journal.Epoch e) (int_range 0 1000);
          map (fun s -> Journal.Meta s) (string_size (int_range 0 12));
          (let* c = int_range 1 9 in
           let* rid = int_range 1 10_000 in
           let* u = int_range 0 50 in
           let* v = int_range 0 50 in
           let* ins = bool in
           return
             (Journal.Tagged
                (c, rid, if ins then Journal.Insert (u, v)
                         else Journal.Delete (u, v))));
        ])
  in
  QCheck.Test.make ~count:60
    ~name:"tail_from at every boundary reproduces the durable suffix"
    (QCheck.make QCheck.Gen.(list_size (int_range 0 25) record_gen))
    (fun records ->
      with_dir (fun dir ->
          Unix.mkdir dir 0o755;
          let path = Filename.concat dir "journal.wal" in
          write_journal path records;
          let r = Journal.read path in
          if r.Journal.records <> records then
            QCheck.Test.fail_reportf "journal does not round-trip";
          List.for_all
            (fun off ->
              match Journal.tail_from path ~offset:off with
              | Error e -> QCheck.Test.fail_reportf "tail_from %d: %s" off e
              | Ok t ->
                  (* the suffix is exactly what [read] reports past off *)
                  let skip =
                    List.length records - List.length t.Journal.tail_records
                  in
                  t.Journal.tail_records
                  = List.filteri (fun j _ -> j >= skip) records
                  && t.Journal.tail_next = r.Journal.valid_bytes)
            (boundaries records)))

(* ------------------------------------------------------------------ *)
(* replica bootstrap + shipped-WAL application (in-process)            *)
(* ------------------------------------------------------------------ *)

let test_replica_roundtrip () =
  with_dir (fun dir_p ->
      with_dir (fun dir_r ->
          let n = 16 in
          let d = Durable.create ~sync_every:1 ~dir:dir_p (durable_config n 8) in
          let ops = ops_of_seed 21 ~n ~count:40 in
          let apply_to d lo hi =
            for i = lo to hi do
              let ins, u, v = ops.(i) in
              ignore
                (if ins then Durable.insert_req d ~client:1 ~rid:(i + 1) u v
                 else Durable.delete_req d ~client:1 ~rid:(i + 1) u v)
            done
          in
          (* state exists before the replica does *)
          apply_to d 0 19;
          let op_epoch, snapshot, wal_offset = Durable.bootstrap_payload d in
          (match
             Durable.bootstrap_replica ~dir:dir_r
               ~config_bytes:(Durable.config_bytes d) ~op_epoch ~wal_offset
               ~repl_epoch:(Durable.repl_epoch d) ~snapshot
           with
          | Ok () -> ()
          | Error e -> Alcotest.failf "bootstrap_replica: %s" e);
          let r =
            match Durable.recover ~sync_every:1 dir_r with
            | Ok r -> r
            | Error e -> Alcotest.failf "replica recover: %s" e
          in
          check_bool "cursor at the bootstrap offset" true
            (Durable.replica_cursor r = Some wal_offset);
          check_int "snapshot state restored" op_epoch (Durable.op_count r);
          (* the primary moves on; ship the delta verbatim *)
          apply_to d 20 39;
          Durable.sync d;
          let d_off = Durable.durable_offset d in
          let payload =
            Journal.read_slice (Durable.wal_path d) ~pos:wal_offset
              ~len:(d_off - wal_offset)
          in
          let fired = ref 0 in
          (match
             Durable.apply_shipped r payload
               ~on_update:(fun ~u:_ ~v:_ ~changed:_ -> incr fired)
           with
          | Ok applied -> check_int "ops applied" 20 applied
          | Error e -> Alcotest.failf "apply_shipped: %s" e);
          check_int "on_update fired per op" 20 !fired;
          check_bool "cursor advanced to the shipped end" true
            (Durable.replica_cursor r = Some d_off);
          check_bool "replica state equals primary state" true
            (observe r = observe d);
          (* the replica's dedup table came along with the Tagged frames *)
          let _, u, v = ops.(39) in
          check_bool "shipped rid dedups" true
            (match Durable.insert_req r ~client:1 ~rid:40 u v with
            | `Duplicate _ -> true
            | `Applied _ -> false);
          Durable.close r;
          (* a replica crash loses nothing: recover resumes at the same
             cursor with the same state *)
          let r2 =
            match Durable.recover ~sync_every:1 dir_r with
            | Ok r2 -> r2
            | Error e -> Alcotest.failf "replica re-recover: %s" e
          in
          check_bool "cursor survives recovery" true
            (Durable.replica_cursor r2 = Some d_off);
          check_bool "state survives recovery" true (observe r2 = observe d);
          (* promotion: epoch bumps, cursor clears, and a recover of the
             promoted dir stays a primary *)
          check_int "promotion returns epoch 1" 1 (Durable.bump_repl_epoch r2);
          check_bool "promoted node has no cursor" true
            (Durable.replica_cursor r2 = None);
          Durable.close r2;
          (match Durable.recover ~sync_every:1 dir_r with
          | Ok r3 ->
              check_int "epoch survives recovery" 1 (Durable.repl_epoch r3);
              check_bool "promoted dir recovers as primary" true
                (Durable.replica_cursor r3 = None);
              Durable.close r3
          | Error e -> Alcotest.failf "promoted recover: %s" e);
          Durable.close d))

(* shipped garbage must be rejected atomically: no bytes appended, no
   ops applied, cursor unmoved *)
let test_apply_shipped_rejects_garbage () =
  with_dir (fun dir_p ->
      with_dir (fun dir_r ->
          let n = 16 in
          let d = Durable.create ~sync_every:1 ~dir:dir_p (durable_config n 9) in
          ignore (Durable.insert_req d ~client:1 ~rid:1 0 1);
          let op_epoch, snapshot, wal_offset = Durable.bootstrap_payload d in
          (match
             Durable.bootstrap_replica ~dir:dir_r
               ~config_bytes:(Durable.config_bytes d) ~op_epoch ~wal_offset
               ~repl_epoch:0 ~snapshot
           with
          | Ok () -> ()
          | Error e -> Alcotest.failf "bootstrap_replica: %s" e);
          let r =
            match Durable.recover ~sync_every:1 dir_r with
            | Ok r -> r
            | Error e -> Alcotest.failf "replica recover: %s" e
          in
          let before = observe r in
          List.iter
            (fun payload ->
              match
                Durable.apply_shipped r payload
                  ~on_update:(fun ~u:_ ~v:_ ~changed:_ -> ())
              with
              | Ok _ -> Alcotest.fail "garbage payload must be rejected"
              | Error _ ->
                  check_bool "cursor unmoved" true
                    (Durable.replica_cursor r = Some wal_offset);
                  check_bool "state unmoved" true (observe r = before))
            [
              "not a frame";
              "\x05abcde\xff\xff\xff\xff";
              (* a valid frame shape whose body is not a record *)
              (let b = Buffer.create 16 in
               Mspar_prelude.Codec.Frames.encode b "zzzz";
               Buffer.contents b);
            ];
          Durable.close r;
          Durable.close d))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mspar_recovery"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "truncated" `Quick test_codec_truncated;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "missing file" `Quick test_journal_missing;
          Alcotest.test_case "torn tail" `Quick test_journal_torn_tail;
          Alcotest.test_case "crc corruption" `Quick test_journal_crc_corruption;
          Alcotest.test_case "header damage" `Quick test_journal_header_damage;
          Alcotest.test_case "snapshot blob" `Quick test_blob_roundtrip;
          Alcotest.test_case "tail_from boundaries" `Quick
            test_tail_from_boundaries;
          Alcotest.test_case "tail_from torn" `Quick test_tail_from_torn;
          Alcotest.test_case "ship-slice roundtrip" `Quick
            test_ship_slice_roundtrip;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "rng state" `Quick test_rng_state_roundtrip;
          Alcotest.test_case "sparsifier roundtrip" `Quick
            test_sparsifier_snapshot_roundtrip;
          Alcotest.test_case "matching roundtrip" `Quick
            test_matching_snapshot_roundtrip;
          Alcotest.test_case "decode rejects corruption" `Quick
            test_decode_rejects_corruption;
        ] );
      ( "audit",
        [
          Alcotest.test_case "detect + repair" `Quick
            test_audit_detects_and_repairs;
          Alcotest.test_case "graph audit + checksum" `Quick
            test_graph_audit_and_checksum;
        ] );
      ( "durable",
        [
          Alcotest.test_case "create/recover" `Quick test_durable_create_recover;
          Alcotest.test_case "recover empty dir" `Quick
            test_durable_recover_empty;
          Alcotest.test_case "audit repairs" `Quick test_durable_audit_repairs;
        ] );
      ( "lockfile",
        [
          Alcotest.test_case "contended" `Quick test_lock_contended;
          Alcotest.test_case "stale detection" `Quick test_lock_stale_dead_pid;
          Alcotest.test_case "guards durable" `Quick test_lock_guards_durable;
          Alcotest.test_case "epoch fence vs dead holder" `Quick
            test_lock_epoch_dead_holder;
          Alcotest.test_case "promote vs stale primary" `Quick
            test_lock_promote_vs_stale_primary;
        ] );
      ( "replication",
        [
          Alcotest.test_case "bootstrap + apply_shipped" `Quick
            test_replica_roundtrip;
          Alcotest.test_case "apply_shipped rejects garbage" `Quick
            test_apply_shipped_rejects_garbage;
        ] );
      ( "dedup",
        [
          Alcotest.test_case "at-most-once basics" `Quick test_dedup_basics;
          Alcotest.test_case "survives recover" `Quick
            test_dedup_survives_recover;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_crash_recover_equivalence; qcheck_tail_from_suffix ] );
    ]
