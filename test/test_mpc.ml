(* Tests for mspar_mpc: the MPC shuffle simulator and the two-round
   sparsifier-based matching algorithm. *)

open Mspar_prelude
open Mspar_graph
open Mspar_matching
open Mspar_mpc

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Simulator                                                          *)
(* ------------------------------------------------------------------ *)

let test_exchange_basic () =
  let cfg = { Mpc.machines = 3; capacity = 10 } in
  let stats = Mpc.fresh_stats () in
  let outgoing = [| [ (1, "a"); (2, "b") ]; [ (0, "c") ]; [] |] in
  let incoming = Mpc.exchange cfg stats outgoing in
  check_bool "machine 0 got c" true (incoming.(0) = [ "c" ]);
  check_bool "machine 1 got a" true (incoming.(1) = [ "a" ]);
  check_bool "machine 2 got b" true (incoming.(2) = [ "b" ]);
  check "one round" 1 stats.Mpc.rounds;
  check "three items" 3 stats.Mpc.total_items;
  check "max load one" 1 stats.Mpc.max_load

let test_exchange_capacity () =
  let cfg = { Mpc.machines = 2; capacity = 2 } in
  let stats = Mpc.fresh_stats () in
  let outgoing = [| [ (0, 1); (0, 2); (0, 3) ]; [] |] in
  (match Mpc.exchange cfg stats outgoing with
  | _ -> Alcotest.fail "expected capacity failure"
  | exception Mpc.Capacity_exceeded { machine = 0; load = 3; capacity = 2 } ->
      ());
  (* weighted items count by weight *)
  let stats = Mpc.fresh_stats () in
  let outgoing = [| [ (0, 5) ]; [] |] in
  match Mpc.exchange cfg stats ~weight:(fun w -> w) outgoing with
  | _ -> Alcotest.fail "expected weighted capacity failure"
  | exception Mpc.Capacity_exceeded { load = 5; _ } -> ()

let test_exchange_bad_destination () =
  let cfg = { Mpc.machines = 2; capacity = 10 } in
  Alcotest.check_raises "dest range"
    (Invalid_argument "Mpc.exchange: destination out of range") (fun () ->
      ignore (Mpc.exchange cfg (Mpc.fresh_stats ()) [| [ (7, ()) ]; [] |]))

let test_scatter () =
  let cfg = { Mpc.machines = 3; capacity = 100 } in
  let parts = Mpc.scatter cfg [| 0; 1; 2; 3; 4; 5; 6 |] in
  check "machine 0 share" 3 (List.length parts.(0));
  check "machine 1 share" 2 (List.length parts.(1));
  check "machine 2 share" 2 (List.length parts.(2));
  check_bool "round robin" true (parts.(0) = [ 0; 3; 6 ])

(* ------------------------------------------------------------------ *)
(* Sparsifier-based MPC matching                                      *)
(* ------------------------------------------------------------------ *)

let test_mpc_matching_quality () =
  let rng = Rng.create 1 in
  let g = Gen.complete 120 in
  let cfg = { Mpc.machines = 8; capacity = 20_000 } in
  let r = Mpc_matching.run rng cfg g ~beta:1 ~eps:0.5 in
  check "two rounds" 2 r.Mpc_matching.rounds;
  check_bool "valid on g" true (Matching.is_valid g r.Mpc_matching.matching);
  let got = Matching.size r.Mpc_matching.matching in
  check_bool
    (Printf.sprintf "quality %d vs %d" got 60)
    true
    (float_of_int 60 <= 1.5 *. 1.5 *. float_of_int got)

let test_mpc_memory_beats_baseline () =
  let rng = Rng.create 2 in
  let g = Gen.complete 200 in
  (* capacity comfortably above n*delta but far below m *)
  let cfg = { Mpc.machines = 16; capacity = 8_000 } in
  let r = Mpc_matching.run rng cfg g ~beta:1 ~eps:0.5 in
  check_bool "fits in sub-m capacity" true (r.Mpc_matching.max_load <= 8_000);
  check_bool "sparsifier far below m" true
    (r.Mpc_matching.sparsifier_edges * 4 < Graph.m g);
  (* the unsparsified gather blows the same budget *)
  (match Mpc_matching.baseline_gather cfg g with
  | _ -> Alcotest.fail "baseline should exceed capacity"
  | exception Mpc.Capacity_exceeded _ -> ());
  (* with capacity m it fits, showing the baseline needs Omega(m) *)
  let big = { cfg with Mpc.capacity = 2 * Graph.m g } in
  check "baseline coordinator load is m" (Graph.m g)
    (Mpc_matching.baseline_gather big g)

let test_mpc_single_machine_degenerate () =
  let rng = Rng.create 3 in
  let g = Gen.gnp rng ~n:40 ~p:0.3 in
  let cfg = { Mpc.machines = 1; capacity = 100_000 } in
  let r = Mpc_matching.run rng cfg g ~beta:6 ~eps:0.5 in
  check_bool "valid" true (Matching.is_valid g r.Mpc_matching.matching);
  check_bool "nonempty" true (Matching.size r.Mpc_matching.matching > 0)

let test_mpc_deterministic () =
  let g = Gen.complete 60 in
  let cfg = { Mpc.machines = 4; capacity = 50_000 } in
  let r1 = Mpc_matching.run (Rng.create 9) cfg g ~beta:1 ~eps:0.5 in
  let r2 = Mpc_matching.run (Rng.create 9) cfg g ~beta:1 ~eps:0.5 in
  check "same matching size" (Matching.size r1.Mpc_matching.matching)
    (Matching.size r2.Mpc_matching.matching);
  check "same sparsifier" r1.Mpc_matching.sparsifier_edges
    r2.Mpc_matching.sparsifier_edges

let qcheck_mpc_valid =
  QCheck.Test.make ~name:"mpc matching is always valid" ~count:30
    QCheck.(triple (int_range 4 40) (int_range 1 8) (int_range 0 1000))
    (fun (n, machines, seed) ->
      let rng = Rng.create seed in
      let g = Gen.gnp rng ~n ~p:0.4 in
      let cfg = { Mpc.machines; capacity = 1_000_000 } in
      let r = Mpc_matching.run rng cfg g ~beta:8 ~eps:0.5 in
      Matching.is_valid g r.Mpc_matching.matching
      && r.Mpc_matching.rounds = 2)

let () =
  Alcotest.run "mspar_mpc"
    [
      ( "simulator",
        [
          Alcotest.test_case "exchange" `Quick test_exchange_basic;
          Alcotest.test_case "capacity" `Quick test_exchange_capacity;
          Alcotest.test_case "bad destination" `Quick
            test_exchange_bad_destination;
          Alcotest.test_case "scatter" `Quick test_scatter;
        ] );
      ( "matching",
        [
          Alcotest.test_case "quality" `Quick test_mpc_matching_quality;
          Alcotest.test_case "memory beats baseline" `Quick
            test_mpc_memory_beats_baseline;
          Alcotest.test_case "single machine" `Quick
            test_mpc_single_machine_degenerate;
          Alcotest.test_case "deterministic" `Quick test_mpc_deterministic;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_mpc_valid ]);
    ]
