(* Tests for mspar_graph: the CSR adjacency-array graph and its probe
   accounting, the generators (including the paper's adversarial families),
   neighborhood independence, and arboricity/degeneracy. *)

open Mspar_prelude
open Mspar_graph

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Graph core                                                         *)
(* ------------------------------------------------------------------ *)

let test_graph_construction () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 1); (1, 0); (3, 3) ] in
  check "n" 4 (Graph.n g);
  check "m dedups and drops loops" 2 (Graph.m g);
  check "deg 1" 2 (Graph.degree g 1);
  check "deg 3 (loop dropped)" 0 (Graph.degree g 3);
  check_bool "has edge" true (Graph.has_edge g 2 1);
  check_bool "no self edge" false (Graph.has_edge g 3 3);
  check_bool "absent edge" false (Graph.has_edge g 0 3);
  check_bool "edges normalised" true (Graph.edges g = [| (0, 1); (1, 2) |])

let test_graph_rejects_out_of_range () =
  Alcotest.check_raises "bad endpoint"
    (Invalid_argument "Graph.of_edges: endpoint out of range") (fun () ->
      ignore (Graph.of_edges ~n:3 [ (0, 5) ]))

let test_graph_neighbor_access () =
  let g = Graph.of_edges ~n:5 [ (0, 3); (0, 1); (0, 4) ] in
  (* sorted adjacency *)
  check "neighbor 0" 1 (Graph.neighbor g 0 0);
  check "neighbor 1" 3 (Graph.neighbor g 0 1);
  check "neighbor 2" 4 (Graph.neighbor g 0 2);
  Alcotest.check_raises "index out of range"
    (Invalid_argument "Graph.neighbor: index out of range") (fun () ->
      ignore (Graph.neighbor g 0 3))

let test_graph_probe_accounting () =
  let g = Gen.complete 20 in
  Graph.reset_probes g;
  check "fresh" 0 (Graph.probes g);
  ignore (Graph.neighbor g 0 0);
  check "single read" 1 (Graph.probes g);
  Graph.iter_neighbors g 0 (fun _ -> ());
  check "iter adds degree" 20 (Graph.probes g);
  Graph.reset_probes g;
  ignore (Graph.has_edge g 0 19);
  check_bool "has_edge costs O(log deg)" true (Graph.probes g <= 6);
  (* edges/iter_edges are oracle paths: uncounted *)
  Graph.reset_probes g;
  ignore (Graph.edges g);
  check "oracle paths uncounted" 0 (Graph.probes g)

let test_graph_induced () =
  let g = Gen.cycle 6 in
  let sub, mapping = Graph.induced g [| 0; 1; 2; 4 |] in
  check "induced n" 4 (Graph.n sub);
  (* edges 0-1, 1-2 survive; 4 is isolated in the induced graph *)
  check "induced m" 2 (Graph.m sub);
  check_bool "mapping sorted distinct" true (mapping = [| 0; 1; 2; 4 |])

let test_graph_union_subgraph_equal () =
  let a = Graph.of_edges ~n:4 [ (0, 1) ] in
  let b = Graph.of_edges ~n:4 [ (1, 2) ] in
  let u = Graph.union a b in
  check "union m" 2 (Graph.m u);
  check_bool "a sub u" true (Graph.is_subgraph ~sub:a ~super:u);
  check_bool "u not sub a" false (Graph.is_subgraph ~sub:u ~super:a);
  check_bool "equal reflexive" true (Graph.equal u u);
  check_bool "not equal" false (Graph.equal a b)

(* ------------------------------------------------------------------ *)
(* Generators                                                         *)
(* ------------------------------------------------------------------ *)

let test_gen_basic_shapes () =
  check "complete m" (10 * 9 / 2) (Graph.m (Gen.complete 10));
  check "path m" 9 (Graph.m (Gen.path 10));
  check "cycle m" 10 (Graph.m (Gen.cycle 10));
  check "star m" 9 (Graph.m (Gen.star 10));
  check "star max degree" 9 (Graph.max_degree (Gen.star 10));
  check "grid m" ((3 * 3) + (4 * 2)) (Graph.m (Gen.grid ~rows:3 ~cols:4));
  check "matching m" 5 (Graph.m (Gen.perfect_matching 10));
  check "empty m" 0 (Graph.m (Gen.empty 7))

let test_gen_gnm_exact () =
  let rng = Rng.create 1 in
  for _ = 0 to 9 do
    let n = 5 + Rng.int rng 20 in
    let m = Rng.int rng (n * (n - 1) / 2) in
    let g = Gen.gnm rng ~n ~m in
    check "gnm edge count" m (Graph.m g)
  done

let test_gen_gnp_density () =
  let rng = Rng.create 2 in
  let g = Gen.gnp rng ~n:100 ~p:0.3 in
  let expected = int_of_float (0.3 *. float_of_int (100 * 99 / 2)) in
  check_bool "gnp density near p" true (abs (Graph.m g - expected) < expected / 5)

let test_gen_bipartite () =
  let rng = Rng.create 3 in
  let g = Gen.random_bipartite rng ~left:10 ~right:12 ~p:0.5 in
  check "n" 22 (Graph.n g);
  Graph.iter_edges g (fun u v ->
      check_bool "crosses partition" true (u < 10 && v >= 10))

let test_gen_clique_minus_edge () =
  let g = Gen.clique_minus_edge ~n:8 ~missing:(6, 7) in
  check "m" ((8 * 7 / 2) - 1) (Graph.m g);
  check_bool "missing edge" false (Graph.has_edge g 6 7);
  check_bool "other edges present" true (Graph.has_edge g 0 7)

let test_gen_two_cliques_bridge () =
  let g, (a, b) = Gen.two_cliques_bridge ~half:5 in
  check "n" 10 (Graph.n g);
  check "m" ((2 * (5 * 4 / 2)) + 1) (Graph.m g);
  check_bool "bridge present" true (Graph.has_edge g a b);
  (* the bridge is a cut edge between the halves *)
  check_bool "bridge crosses" true (a < 5 && b >= 5);
  Alcotest.check_raises "even half rejected"
    (Invalid_argument "Gen.two_cliques_bridge: need odd half >= 3") (fun () ->
      ignore (Gen.two_cliques_bridge ~half:4))

let test_gen_disjoint_cliques_structure () =
  let rng = Rng.create 4 in
  let g = Gen.disjoint_cliques rng ~n:30 ~k:3 in
  (* triangle-closed: if (u,v) and (v,w) then (u,w) *)
  Graph.iter_edges g (fun u v ->
      Graph.iter_neighbors g v (fun w ->
          if w <> u && Graph.has_edge g u v && Graph.has_edge g v w then
            check_bool "clique closure" true (Graph.has_edge g u w)))

let test_gen_hub_gadget () =
  let g, claimed_mcm = Gen.hub_gadget ~pairs:12 ~hub_size:3 in
  check "n" ((2 * 12) + (2 * 3)) (Graph.n g);
  check "m" (12 + (2 * 12 * 3)) (Graph.m g);
  (* the returned MCM size must be exact *)
  check "mcm formula" claimed_mcm
    (Mspar_matching.Matching.size (Mspar_matching.Blossom.solve g));
  (* beta = max(pairs, hub_size + 1): a hub's neighborhood contains all 12
     mutually non-adjacent l_i's *)
  let beta = Beta.value (Beta.compute g) in
  check "beta is max(pairs, hub_size+1)" 12 beta;
  check_bool "bipartite" true (Mspar_matching.Hopcroft_karp.bipartition g <> None)

let test_gen_planted_matching () =
  let rng = Rng.create 5 in
  let g = Gen.random_graph_with_planted_matching rng ~n:40 ~extra:60 in
  (* the planted perfect matching guarantees MCM = n/2 *)
  let m = Mspar_matching.Blossom.solve g in
  check "planted matching is perfect" 20 (Mspar_matching.Matching.size m)

(* ------------------------------------------------------------------ *)
(* Line graphs / unit disks                                           *)
(* ------------------------------------------------------------------ *)

let test_line_graph_structure () =
  (* L(path_4): path with 3 vertices; L(star_4): triangle *)
  let lp, edges = Line_graph.of_graph (Gen.path 4) in
  check "L(P4) n" 3 (Graph.n lp);
  check "L(P4) m" 2 (Graph.m lp);
  check "edge map size" 3 (Array.length edges);
  let ls, _ = Line_graph.of_graph (Gen.star 4) in
  check "L(K1,3) is a triangle" 3 (Graph.m ls);
  check "L(K1,3) n" 3 (Graph.n ls)

let test_line_graph_beta_at_most_2 () =
  let rng = Rng.create 6 in
  for _ = 0 to 4 do
    let lg = Line_graph.random_base rng ~base_n:10 ~p:0.4 in
    if Graph.n lg > 0 then begin
      let beta = Beta.compute lg in
      check_bool
        (Printf.sprintf "line graph beta %d <= 2" (Beta.value beta))
        true
        (Beta.value beta <= 2);
      check_bool "claw check agrees" true (Beta.check_claw_free lg ~beta:2 = None)
    end
  done

let test_unit_disk () =
  let rng = Rng.create 7 in
  let g, points = Unit_disk.random rng ~n:100 ~radius:0.15 in
  check "n" 100 (Graph.n g);
  check "points" 100 (Array.length points);
  (* verify adjacency against brute-force distances *)
  for u = 0 to 99 do
    for v = u + 1 to 99 do
      let d = Unit_disk.distance points.(u) points.(v) in
      check_bool "edge iff close" true
        (Graph.has_edge g u v = (d <= 0.15))
    done
  done;
  (* planar unit-disk graphs have beta <= 5 *)
  let beta = Beta.compute ~budget:2_000_000 g in
  check_bool
    (Printf.sprintf "udg beta %d <= 5" (Beta.value beta))
    true
    (Beta.value beta <= 5)

let test_proper_interval () =
  let rng = Rng.create 20 in
  let g = Geometric.proper_interval rng ~n:120 ~span:15.0 in
  (* unit interval graphs are claw-free: beta <= 2 *)
  let beta = Beta.value (Beta.compute ~budget:2_000_000 g) in
  check_bool (Printf.sprintf "interval beta %d <= 2" beta) true (beta <= 2);
  check_bool "no claw" true (Beta.check_claw_free g ~beta:2 = None);
  (* intervals form a chain: adjacency is consecutive-overlap, so the graph
     must have no induced C4 either; spot-check connectivity shape via
     degeneracy being at least 1 on dense spans *)
  check_bool "nonempty" true (Graph.m g > 0)

let test_quasi_unit_disk () =
  let rng = Rng.create 21 in
  let g = Geometric.quasi_unit_disk rng ~n:120 ~radius:0.25 ~inner:0.7 in
  (* the packing argument gives a constant bound; with inner=0.7 the
     constant is slightly above the UDG 5 *)
  let beta = Beta.value (Beta.compute ~budget:2_000_000 g) in
  check_bool (Printf.sprintf "qudg beta %d <= 8" beta) true (beta <= 8);
  Alcotest.check_raises "inner out of range"
    (Invalid_argument "Geometric.quasi_unit_disk: inner in (0, 1]") (fun () ->
      ignore (Geometric.quasi_unit_disk rng ~n:4 ~radius:0.1 ~inner:0.0))

let test_disk_graph () =
  let rng = Rng.create 22 in
  let g = Geometric.disk_graph rng ~n:120 ~rmin:0.05 ~rmax:0.1 in
  let beta = Beta.value (Beta.compute ~budget:2_000_000 g) in
  (* bounded radius ratio (2) keeps the packing constant small *)
  check_bool (Printf.sprintf "disk beta %d <= 8" beta) true (beta <= 8);
  Alcotest.check_raises "bad radii"
    (Invalid_argument "Geometric.disk_graph: need 0 < rmin <= rmax") (fun () ->
      ignore (Geometric.disk_graph rng ~n:4 ~rmin:0.2 ~rmax:0.1))

(* ------------------------------------------------------------------ *)
(* Beta                                                               *)
(* ------------------------------------------------------------------ *)

let test_beta_known_values () =
  check "clique beta" 1 (Beta.value (Beta.compute (Gen.complete 8)));
  check "star beta" 7 (Beta.value (Beta.compute (Gen.star 8)));
  check "cycle beta" 2 (Beta.value (Beta.compute (Gen.cycle 8)));
  check "path beta" 2 (Beta.value (Beta.compute (Gen.path 8)));
  check "empty beta" 0 (Beta.value (Beta.compute (Gen.empty 5)));
  check "matching beta" 1 (Beta.value (Beta.compute (Gen.perfect_matching 8)));
  check_bool "exactness flag" true (Beta.is_exact (Beta.compute (Gen.complete 8)))

let test_beta_clique_minus_edge_is_2 () =
  let g = Gen.clique_minus_edge ~n:10 ~missing:(3, 7) in
  check "beta of clique minus edge" 2 (Beta.value (Beta.compute g))

let test_beta_diversity_family () =
  let rng = Rng.create 8 in
  let g = Gen.bounded_diversity rng ~n:40 ~cliques:6 ~memberships:2 in
  let beta = Beta.value (Beta.compute ~budget:2_000_000 g) in
  (* each vertex's neighborhood is covered by <= 2 cliques, so beta <= 2 per
     the diversity argument in the paper's introduction *)
  check_bool (Printf.sprintf "diversity-2 beta %d <= 2" beta) true (beta <= 2)

let test_beta_budget_degrades_gracefully () =
  let g = Gen.star 30 in
  match Beta.compute ~budget:1 g with
  | Beta.Exact v -> check "still exact on trivial" 29 v
  | Beta.Lower_bound v -> check_bool "lower bound sane" true (v >= 1 && v <= 29)

let test_beta_claw_witness () =
  let g = Gen.star 6 in
  match Beta.check_claw_free g ~beta:2 with
  | None -> Alcotest.fail "star must contain a claw"
  | Some (center, leaves) ->
      check "claw center" 0 center;
      check "claw size" 3 (Array.length leaves);
      Array.iter
        (fun l -> check_bool "leaf adjacent to center" true (Graph.has_edge g 0 l))
        leaves

let test_beta_greedy_lower () =
  let rng = Rng.create 9 in
  let g = Gen.star 20 in
  let lower = Beta.greedy_lower rng g in
  check "greedy finds star independence" 19 lower

let test_beta_sampled_lower () =
  let rng = Rng.create 19 in
  (* sampled estimate is a valid lower bound *)
  for _ = 0 to 9 do
    let g = Gen.gnp rng ~n:30 ~p:0.3 in
    let exact = Beta.value (Beta.compute g) in
    let sampled = Beta.sampled_lower rng ~samples:16 g in
    check_bool "lower bound" true (sampled <= exact);
    check_bool "positive on non-empty" true (Graph.m g = 0 || sampled >= 1)
  done;
  (* with enough samples on a clique it nails beta = 1 *)
  check "clique sampled" 1 (Beta.sampled_lower rng ~samples:8 (Gen.complete 40));
  check "empty graph sampled" 0 (Beta.sampled_lower rng (Gen.empty 0))

(* ------------------------------------------------------------------ *)
(* Arboricity / degeneracy                                            *)
(* ------------------------------------------------------------------ *)

let test_degeneracy_known () =
  check "tree degeneracy" 1 (Arboricity.degeneracy (Gen.path 10));
  check "cycle degeneracy" 2 (Arboricity.degeneracy (Gen.cycle 10));
  check "clique degeneracy" 7 (Arboricity.degeneracy (Gen.complete 8));
  check "grid degeneracy" 2 (Arboricity.degeneracy (Gen.grid ~rows:4 ~cols:5));
  check "empty degeneracy" 0 (Arboricity.degeneracy (Gen.empty 5));
  check "star degeneracy" 1 (Arboricity.degeneracy (Gen.star 12))

let test_degeneracy_order_property () =
  let rng = Rng.create 10 in
  for _ = 0 to 9 do
    let g = Gen.gnp rng ~n:30 ~p:0.2 in
    let d, order = Arboricity.degeneracy_order g in
    let rank = Array.make (Graph.n g) 0 in
    Array.iteri (fun i v -> rank.(v) <- i) order;
    (* every vertex has at most d neighbors later in the order *)
    for v = 0 to Graph.n g - 1 do
      let later = ref 0 in
      Graph.iter_neighbors g v (fun u -> if rank.(u) > rank.(v) then incr later);
      check_bool "elimination order respects d" true (!later <= d)
    done
  done

let test_density_and_sandwich () =
  let g = Gen.complete 9 in
  (* alpha(K9) = ceil(36/8) = 5 *)
  check "density lower bound" 5 (Arboricity.density_lower_bound g);
  let d = Arboricity.degeneracy g in
  check_bool "sandwich lower <= degeneracy" true
    (Arboricity.density_lower_bound g <= d)

let test_orientation () =
  let rng = Rng.create 11 in
  let g = Gen.gnp rng ~n:25 ~p:0.3 in
  let out = Arboricity.orient_by_degeneracy g in
  let d = Arboricity.degeneracy g in
  let total = Array.fold_left (fun acc l -> acc + Array.length l) 0 out in
  check "every edge oriented once" (Graph.m g) total;
  Array.iter
    (fun l ->
      check_bool "out-degree bounded by degeneracy" true (Array.length l <= d))
    out

(* ------------------------------------------------------------------ *)
(* Graph I/O                                                          *)
(* ------------------------------------------------------------------ *)

let test_graph_io_roundtrip () =
  let rng = Rng.create 30 in
  for _ = 0 to 9 do
    let g = Gen.gnp rng ~n:(2 + Rng.int rng 30) ~p:0.3 in
    let g' = Graph_io.of_string_exn (Graph_io.to_string g) in
    check_bool "roundtrip" true (Graph.equal g g')
  done;
  (* empty graph *)
  let e = Gen.empty 0 in
  check_bool "empty roundtrip" true
    (Graph.equal e (Graph_io.of_string_exn (Graph_io.to_string e)))

let test_graph_io_file_roundtrip () =
  let g = Gen.cycle 9 in
  let path = Filename.temp_file "mspar" ".graph" in
  Graph_io.save path g;
  let g' = Graph_io.load_exn path in
  Sys.remove path;
  check_bool "file roundtrip" true (Graph.equal g g')

let test_graph_io_tolerant_input () =
  (* comments, blank lines, duplicate and reversed edges, self-loops *)
  let s = "# a comment\n\n4 5\n0 1\n1 0\n2 3\n1 1\n0 2\n" in
  let g = Graph_io.of_string_exn s in
  check "loops/dups merged" 3 (Graph.m g)

let test_graph_io_rejects_malformed () =
  check_bool "bad header" true
    (try
       ignore (Graph_io.of_string_exn "nope\n");
       false
     with Failure _ -> true);
  check_bool "wrong count" true
    (try
       ignore (Graph_io.of_string_exn "3 2\n0 1\n");
       false
     with Failure _ -> true);
  check_bool "out of range" true
    (try
       ignore (Graph_io.of_string_exn "2 1\n0 5\n");
       false
     with Failure _ -> true)

let test_graph_io_parse_errors () =
  (* the result API reports the offending line and token *)
  let err s =
    match Graph_io.parse s with
    | Ok _ -> Alcotest.failf "expected a parse error for %S" s
    | Error e -> e
  in
  let e = err "nope\n" in
  check "bad header line" 1 e.Graph_io.line;
  check_bool "bad header token" true (e.Graph_io.token = Some "nope");
  let e = err "# c\n3 3\n0 1\n0 x\n1 2\n" in
  check "bad edge line" 4 e.Graph_io.line;
  check_bool "bad edge token" true (e.Graph_io.token = Some "x");
  let e = err "2 1\n0 5\n" in
  check "range line" 2 e.Graph_io.line;
  check_bool "range token" true (e.Graph_io.token = Some "5");
  let e = err "3 2\n0 1\n" in
  check_bool "count reason mentions edges" true
    (String.length e.Graph_io.reason > 0);
  (* huge header n must be rejected, not allocated *)
  let e = err "999999999999 0\n" in
  check "huge n line" 1 e.Graph_io.line;
  (* error_message matches the raising wrapper *)
  check_bool "message prefix" true
    (String.length (Graph_io.error_message e) > 9
    && String.sub (Graph_io.error_message e) 0 9 = "Graph_io:")

let test_graph_io_trailing_whitespace () =
  (* trailing spaces/tabs, CR-ish blank lines and a trailing comment are
     all tolerated *)
  let s = "  # padded comment\n3 2  \n0 1\t\n\n  2 0  \n   \n# done\n" in
  (match Graph_io.parse s with
  | Ok g ->
      check "ws n" 3 (Graph.n g);
      check "ws m" 2 (Graph.m g)
  | Error e -> Alcotest.failf "unexpected error: %s" (Graph_io.error_message e));
  check "wrapper agrees" 2 (Graph.m (Graph_io.of_string_exn s))

(* ------------------------------------------------------------------ *)
(* .msgr binary container                                             *)
(* ------------------------------------------------------------------ *)

let with_msgr g f =
  let path = Filename.temp_file "mspar" ".msgr" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Graph_io.save_packed path g;
      f path)

let test_msgr_roundtrip () =
  let rng = Rng.create 40 in
  for _ = 0 to 9 do
    let g = Gen.gnp rng ~n:(2 + Rng.int rng 40) ~p:0.3 in
    with_msgr g (fun path ->
        match Graph_io.load_mmap path with
        | Error e -> Alcotest.fail e
        | Ok g' ->
            check_bool "equal" true (Graph.equal g g');
            check_bool "checksum preserved" true
              (Int64.equal (Graph.checksum g) (Graph.checksum g'));
            (* a full audit over the mmap-backed lanes stays in bounds *)
            Alcotest.(check (list string)) "audit clean" [] (Graph.audit g'))
  done;
  with_msgr (Gen.empty 0) (fun path ->
      check_bool "empty graph roundtrips" true
        (Graph.equal (Gen.empty 0) (Graph_io.load_mmap_exn path)));
  with_msgr (Gen.empty 5) (fun path ->
      check_bool "edgeless graph roundtrips" true
        (Graph.equal (Gen.empty 5) (Graph_io.load_mmap_exn path)))

let test_msgr_verify_and_materialize () =
  let g = Gen.complete 12 in
  with_msgr g (fun path ->
      let mm = Graph_io.load_mmap_exn ~verify:true path in
      check_bool "verified load equal" true (Graph.equal g mm);
      let d = Graph_io.load_packed_exn path in
      (* the materialized copy must survive the file vanishing *)
      Sys.remove path;
      check_bool "materialized equal" true (Graph.equal g d);
      Alcotest.(check (list string)) "materialized audit" [] (Graph.audit d);
      (* probe accounting works on loaded graphs *)
      Graph.reset_probes d;
      Graph.iter_neighbors d 0 (fun _ -> ());
      check "probes count on loaded graph" 11 (Graph.probes d))

let test_msgr_rejects_garbage () =
  (* wrong bytes entirely *)
  let path = Filename.temp_file "mspar" ".msgr" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "definitely not a graph container";
      close_out oc;
      (match Graph_io.load_mmap path with
      | Ok _ -> Alcotest.fail "garbage must not load"
      | Error e -> check_bool "error is descriptive" true (String.length e > 0));
      check_bool "exn wrapper raises Failure" true
        (try
           ignore (Graph_io.load_mmap_exn path);
           false
         with Failure _ -> true));
  (* missing file is an Error, not an exception *)
  match Graph_io.load_mmap "/nonexistent/definitely/missing.msgr" with
  | Ok _ -> Alcotest.fail "missing file must not load"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Property tests                                                     *)
(* ------------------------------------------------------------------ *)

(* messy edge lists: self-loops, duplicates, and reversed duplicates all
   allowed — exactly the inputs the packed builder must clean up *)
let messy_edges_gen =
  QCheck.Gen.(
    int_range 1 40 >>= fun n ->
    int_range 0 300 >>= fun m ->
    list_repeat m (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    >>= fun edges -> return (n, edges))

let messy_edges =
  QCheck.make
    ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";"
           (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) edges)))
    messy_edges_gen

let qcheck_packed_equals_list =
  QCheck.Test.make
    ~name:"of_packed / of_edges / of_edges_reference agree on messy inputs"
    ~count:300 messy_edges
    (fun (n, edges) ->
      let via_list = Graph.of_edges ~n edges in
      let via_reference = Graph.of_edges_reference ~n edges in
      let via_packed =
        match Graph.pack_shift ~n with
        | None -> QCheck.Test.fail_report "small n must be packable"
        | Some shift ->
            let codes =
              Array.of_list
                (List.map (fun (u, v) -> Graph.pack ~shift u v) edges)
            in
            Graph.of_packed ~n codes
      in
      let via_iter =
        Graph.of_edges_iter ~n (fun push ->
            List.iter (fun (u, v) -> push u v) edges)
      in
      Graph.equal via_list via_reference
      && Graph.equal via_list via_packed
      && Graph.equal via_list via_iter)

let qcheck_packed_pack_roundtrip =
  QCheck.Test.make ~name:"pack/unpack roundtrip" ~count:200
    QCheck.(pair (int_range 1 1_000_000) (int_range 0 10_000))
    (fun (n, seed) ->
      match Graph.pack_shift ~n with
      | None -> false
      | Some shift ->
          let rng = Rng.create seed in
          let u = Rng.int rng n and v = Rng.int rng n in
          let c = Graph.pack ~shift u v in
          Graph.unpack_u ~shift c = u && Graph.unpack_v ~shift c = v)

let qcheck_max_degree_cached =
  QCheck.Test.make ~name:"cached max_degree equals the degree scan" ~count:100
    messy_edges
    (fun (n, edges) ->
      let g = Graph.of_edges ~n edges in
      let scan = ref 0 in
      for v = 0 to n - 1 do
        if Graph.degree g v > !scan then scan := Graph.degree g v
      done;
      Graph.max_degree g = !scan)

(* Shared pools for the parallel-builder properties: lazily started (no
   domain spawns unless a property runs) and joined at exit.  1 is the
   caller-only fallback; 7 does not divide most vertex counts, so some
   chunks are empty or uneven. *)
let test_pools =
  lazy (List.map (fun d -> Pool.create ~num_domains:d ()) [ 1; 2; 4; 7 ])

let () =
  at_exit (fun () ->
      if Lazy.is_val test_pools then
        List.iter Pool.shutdown (Lazy.force test_pools))

let qcheck_packed_par_equals_seq =
  QCheck.Test.make
    ~name:"of_packed_par agrees with of_packed for every pool size"
    ~count:150 messy_edges
    (fun (n, edges) ->
      match Graph.pack_shift ~n with
      | None -> QCheck.Test.fail_report "small n must be packable"
      | Some shift ->
          let codes =
            Array.of_list (List.map (fun (u, v) -> Graph.pack ~shift u v) edges)
          in
          (* both builders mutate their prefix: give each its own copy *)
          let seq = Graph.of_packed ~n (Array.copy codes) in
          List.for_all
            (fun pool ->
              let par = Graph.of_packed_par ~pool ~n (Array.copy codes) in
              Graph.equal seq par
              && Graph.m seq = Graph.m par
              && Graph.max_degree seq = Graph.max_degree par)
            (Lazy.force test_pools))

let qcheck_edgebufs_par_equals_concat =
  QCheck.Test.make
    ~name:"of_edgebufs_par equals of_packed over the concatenation"
    ~count:100
    QCheck.(pair messy_edges (int_range 0 10_000))
    (fun ((n, edges), seed) ->
      match Graph.pack_shift ~n with
      | None -> QCheck.Test.fail_report "small n must be packable"
      | Some shift ->
          let codes =
            Array.of_list (List.map (fun (u, v) -> Graph.pack ~shift u v) edges)
          in
          let seq = Graph.of_packed ~n (Array.copy codes) in
          (* scatter the codes over an uneven buffer array (some empty) *)
          let rng = Rng.create seed in
          let nbufs = 1 + Rng.int rng 5 in
          List.for_all
            (fun pool ->
              let bufs = Array.init nbufs (fun _ -> Edgebuf.create ()) in
              let r = Rng.copy rng in
              Array.iter (fun c -> Edgebuf.push bufs.(Rng.int r nbufs) c) codes;
              Graph.equal seq (Graph.of_edgebufs_par ~pool ~n bufs))
            (Lazy.force test_pools))

let test_of_packed_par_rejects () =
  let pool = Pool.create ~num_domains:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Alcotest.check_raises "bad code"
        (Invalid_argument "Graph.of_packed_par: code out of range") (fun () ->
          ignore (Graph.of_packed_par ~pool ~n:4 [| -1 |]));
      Alcotest.check_raises "bad length"
        (Invalid_argument "Graph.of_packed_par: bad length") (fun () ->
          ignore (Graph.of_packed_par ~pool ~n:4 ~len:2 [| 0 |]));
      (* ?len builds only the prefix *)
      match Graph.pack_shift ~n:4 with
      | None -> Alcotest.fail "n=4 must be packable"
      | Some shift ->
          let codes =
            [| Graph.pack ~shift 0 1; Graph.pack ~shift 1 2; Graph.pack ~shift 2 3 |]
          in
          let g = Graph.of_packed_par ~pool ~n:4 ~len:2 codes in
          check "prefix only" 2 (Graph.m g);
          check_bool "prefix content" true
            (Graph.equal g (Graph.of_edges ~n:4 [ (0, 1); (1, 2) ])))

let test_of_packed_rejects () =
  Alcotest.check_raises "bad code"
    (Invalid_argument "Graph.of_packed: code out of range") (fun () ->
      ignore (Graph.of_packed ~n:4 [| -1 |]));
  Alcotest.check_raises "bad length"
    (Invalid_argument "Graph.of_packed: bad length") (fun () ->
      ignore (Graph.of_packed ~n:4 ~len:2 [| 0 |]));
  (* u beyond n decodes out of range *)
  (match Graph.pack_shift ~n:4 with
  | None -> Alcotest.fail "n=4 must be packable"
  | Some shift ->
      Alcotest.check_raises "endpoint beyond n"
        (Invalid_argument "Graph.of_packed: code out of range") (fun () ->
          ignore (Graph.of_packed ~n:4 [| Graph.pack ~shift 5 1 |])));
  (* of_edgebuf cleans loops/duplicates like of_edges *)
  match Graph.pack_shift ~n:5 with
  | None -> Alcotest.fail "n=5 must be packable"
  | Some shift ->
      let buf = Mspar_prelude.Edgebuf.create () in
      List.iter
        (fun (u, v) -> Mspar_prelude.Edgebuf.push buf (Graph.pack ~shift u v))
        [ (0, 1); (1, 0); (2, 2); (3, 4); (0, 1) ];
      let g = Graph.of_edgebuf ~n:5 buf in
      check "edgebuf m" 2 (Graph.m g);
      check_bool "edgebuf equal" true
        (Graph.equal g (Graph.of_edges ~n:5 [ (0, 1); (3, 4) ]))

let qcheck_csr_roundtrip =
  QCheck.Test.make ~name:"edges roundtrip through of_edges" ~count:100
    QCheck.(pair (int_range 1 25) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Gen.gnp rng ~n ~p:0.4 in
      let g2 = Graph.of_edge_array ~n (Graph.edges g) in
      Graph.equal g g2)

let qcheck_degree_sum =
  QCheck.Test.make ~name:"degree sum equals 2m" ~count:100
    QCheck.(pair (int_range 1 30) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Gen.gnp rng ~n ~p:0.3 in
      let sum = ref 0 in
      for v = 0 to n - 1 do
        sum := !sum + Graph.degree g v
      done;
      !sum = 2 * Graph.m g && Graph.complement_degree_sum g = !sum)

let qcheck_beta_vs_greedy =
  QCheck.Test.make ~name:"exact beta dominates greedy lower bound" ~count:50
    QCheck.(pair (int_range 2 18) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Gen.gnp rng ~n ~p:0.4 in
      let exact = Beta.value (Beta.compute g) in
      let greedy = Beta.greedy_lower (Rng.create (seed + 1)) g in
      exact >= greedy)

let qcheck_interval_claw_free =
  QCheck.Test.make ~name:"proper interval graphs have beta <= 2" ~count:30
    QCheck.(pair (int_range 5 60) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Geometric.proper_interval rng ~n ~span:(float_of_int n /. 10.0) in
      Beta.check_claw_free g ~beta:2 = None)

let qcheck_io_roundtrip =
  QCheck.Test.make ~name:"graph_io roundtrips arbitrary graphs" ~count:60
    QCheck.(pair (int_range 0 40) (int_range 0 1000))
    (fun (n, seed) ->
      let g = Gen.gnp (Rng.create seed) ~n ~p:0.3 in
      Graph.equal g (Graph_io.of_string_exn (Graph_io.to_string g)))

(* fuzz: [Graph_io.parse] is total — random byte junk must come back as
   [Ok] or [Error], never an exception *)
let junk_string =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "%S" s)
    QCheck.Gen.(
      int_range 0 200 >>= fun len ->
      string_size ~gen:(char_range '\000' '\255') (return len))

let qcheck_parse_never_raises_on_junk =
  QCheck.Test.make ~name:"graph_io parse never raises on byte junk" ~count:500
    junk_string (fun s ->
      match Graph_io.parse s with Ok _ | Error _ -> true)

(* fuzz: valid serializations that are then truncated or mutated at a
   random position — the shapes a half-written or corrupted file takes *)
let mangled_edge_list =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "%S" s)
    QCheck.Gen.(
      int_range 0 10_000 >>= fun seed ->
      int_range 1 25 >>= fun n ->
      int_range 0 3 >>= fun mode ->
      int_range 0 1_000_000 >>= fun pos ->
      int_range 0 255 >>= fun byte ->
      return
        (let g = Gen.gnp (Rng.create seed) ~n ~p:0.3 in
         let s = Graph_io.to_string g in
         let len = String.length s in
         match mode with
         | 0 -> String.sub s 0 (pos mod (len + 1)) (* truncate *)
         | 1 ->
             if len = 0 then s
             else
               let b = Bytes.of_string s in
               Bytes.set b (pos mod len) (Char.chr byte);
               Bytes.to_string b (* flip one byte *)
         | 2 -> s ^ String.make 1 (Char.chr byte) (* trailing junk *)
         | _ -> s))

let qcheck_parse_never_raises_on_mangled =
  QCheck.Test.make
    ~name:"graph_io parse never raises on truncated/mutated edge lists"
    ~count:500 mangled_edge_list (fun s ->
      match Graph_io.parse s with Ok _ | Error _ -> true)

(* the off-heap Bigarray CSR must be bit-for-bit the structure the heap
   reference builder produces: same canonical edge set, same checksum *)
let qcheck_checksum_parity =
  QCheck.Test.make
    ~name:"bigarray CSR checksum matches the heap reference builder"
    ~count:200 messy_edges
    (fun (n, edges) ->
      let reference = Graph.of_edges_reference ~n edges in
      let want = Graph.checksum reference in
      match Graph.pack_shift ~n with
      | None -> QCheck.Test.fail_report "small n must be packable"
      | Some shift ->
          let codes =
            Array.of_list (List.map (fun (u, v) -> Graph.pack ~shift u v) edges)
          in
          Int64.equal want (Graph.checksum (Graph.of_packed ~n (Array.copy codes)))
          && Int64.equal want (Graph.checksum (Graph.of_edges ~n edges))
          && List.for_all
               (fun pool ->
                 Int64.equal want
                   (Graph.checksum
                      (Graph.of_packed_par ~pool ~n (Array.copy codes))))
               (Lazy.force test_pools))

let qcheck_msgr_roundtrip =
  QCheck.Test.make ~name:".msgr save / load_mmap preserves checksum and audit"
    ~count:60
    QCheck.(pair (int_range 0 40) (int_range 0 1000))
    (fun (n, seed) ->
      let g = Gen.gnp (Rng.create seed) ~n ~p:0.3 in
      with_msgr g (fun path ->
          match Graph_io.load_mmap path with
          | Error e -> QCheck.Test.fail_report e
          | Ok g' ->
              Graph.equal g g'
              && Int64.equal (Graph.checksum g) (Graph.checksum g')
              && Graph.audit g' = []))

(* fuzz: valid .msgr containers then truncated, grown, byte-inserted or
   bit-flipped.  [load_mmap] must never raise and never read out of
   bounds; with [~verify:true] a mutated file either Errors or decodes
   to the semantically identical graph (Bigarray's int kind drops bit 63
   of each stored word on load, so a flip of that bit is invisible — the
   checksum equality below pins exactly that case and nothing more). *)
let mangled_msgr =
  QCheck.make
    ~print:(fun (seed, mode, pos, bit) ->
      Printf.sprintf "seed=%d mode=%d pos=%d bit=%d" seed mode pos bit)
    QCheck.Gen.(
      int_range 0 10_000 >>= fun seed ->
      int_range 0 3 >>= fun mode ->
      int_range 0 1_000_000 >>= fun pos ->
      int_range 0 7 >>= fun bit -> return (seed, mode, pos, bit))

let qcheck_msgr_fuzz =
  QCheck.Test.make
    ~name:".msgr load_mmap is total on truncated/corrupted containers"
    ~count:200 mangled_msgr
    (fun (seed, mode, pos, bit) ->
      let n = 1 + (seed mod 30) in
      let g = Gen.gnp (Rng.create seed) ~n ~p:0.3 in
      let original = Graph.checksum g in
      with_msgr g (fun path ->
          let bytes =
            In_channel.with_open_bin path (fun ic ->
                Bytes.of_string (In_channel.input_all ic))
          in
          let len = Bytes.length bytes in
          let mutated =
            match mode with
            | 0 -> Bytes.sub bytes 0 (pos mod (len + 1)) (* truncate *)
            | 1 ->
                let i = pos mod len in
                Bytes.set bytes i
                  (Char.chr (Char.code (Bytes.get bytes i) lxor (1 lsl bit)));
                bytes (* flip one bit *)
            | 2 -> Bytes.cat bytes (Bytes.make (1 + (pos mod 16)) '\x7f')
            | _ ->
                let i = pos mod (len + 1) in
                Bytes.concat Bytes.empty
                  [ Bytes.sub bytes 0 i; Bytes.make 1 '\x42';
                    Bytes.sub bytes i (len - i) ] (* insert a byte *)
          in
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_bytes oc mutated);
          (* plain load: total, and any Ok graph is structurally sound
             (audit reads every lane index, all inside the mapping) *)
          (match Graph_io.load_mmap path with
          | Error _ -> ()
          | Ok g' -> ignore (Graph.audit g'));
          (* verified load: Error, or the mutation was semantically
             invisible (header-CRC-survivable no-op or a bit-63 flip) *)
          match Graph_io.load_mmap ~verify:true path with
          | Error _ -> true
          | Ok g' ->
              Int64.equal (Graph.checksum g') original && Graph.audit g' = []))

let qcheck_density_le_degeneracy =
  QCheck.Test.make ~name:"density lower bound <= degeneracy" ~count:100
    QCheck.(pair (int_range 2 30) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Gen.gnp rng ~n ~p:0.3 in
      Arboricity.density_lower_bound g <= max 1 (Arboricity.degeneracy g))

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        qcheck_csr_roundtrip;
        qcheck_packed_equals_list;
        qcheck_packed_pack_roundtrip;
        qcheck_packed_par_equals_seq;
        qcheck_edgebufs_par_equals_concat;
        qcheck_max_degree_cached;
        qcheck_degree_sum;
        qcheck_beta_vs_greedy;
        qcheck_density_le_degeneracy;
        qcheck_interval_claw_free;
        qcheck_io_roundtrip;
        qcheck_parse_never_raises_on_junk;
        qcheck_parse_never_raises_on_mangled;
        qcheck_checksum_parity;
        qcheck_msgr_roundtrip;
        qcheck_msgr_fuzz;
      ]
  in
  Alcotest.run "mspar_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "construction" `Quick test_graph_construction;
          Alcotest.test_case "rejects bad input" `Quick
            test_graph_rejects_out_of_range;
          Alcotest.test_case "neighbor access" `Quick test_graph_neighbor_access;
          Alcotest.test_case "probe accounting" `Quick
            test_graph_probe_accounting;
          Alcotest.test_case "induced" `Quick test_graph_induced;
          Alcotest.test_case "union/subgraph/equal" `Quick
            test_graph_union_subgraph_equal;
          Alcotest.test_case "of_packed validation" `Quick
            test_of_packed_rejects;
          Alcotest.test_case "of_packed_par validation" `Quick
            test_of_packed_par_rejects;
        ] );
      ( "generators",
        [
          Alcotest.test_case "basic shapes" `Quick test_gen_basic_shapes;
          Alcotest.test_case "gnm exact" `Quick test_gen_gnm_exact;
          Alcotest.test_case "gnp density" `Quick test_gen_gnp_density;
          Alcotest.test_case "bipartite" `Quick test_gen_bipartite;
          Alcotest.test_case "clique minus edge" `Quick
            test_gen_clique_minus_edge;
          Alcotest.test_case "two cliques bridge" `Quick
            test_gen_two_cliques_bridge;
          Alcotest.test_case "disjoint cliques" `Quick
            test_gen_disjoint_cliques_structure;
          Alcotest.test_case "planted matching" `Quick test_gen_planted_matching;
          Alcotest.test_case "hub gadget" `Quick test_gen_hub_gadget;
        ] );
      ( "families",
        [
          Alcotest.test_case "line graph structure" `Quick
            test_line_graph_structure;
          Alcotest.test_case "line graph beta" `Quick
            test_line_graph_beta_at_most_2;
          Alcotest.test_case "unit disk" `Quick test_unit_disk;
          Alcotest.test_case "proper interval" `Quick test_proper_interval;
          Alcotest.test_case "quasi unit disk" `Quick test_quasi_unit_disk;
          Alcotest.test_case "disk graph" `Quick test_disk_graph;
        ] );
      ( "beta",
        [
          Alcotest.test_case "known values" `Quick test_beta_known_values;
          Alcotest.test_case "clique minus edge" `Quick
            test_beta_clique_minus_edge_is_2;
          Alcotest.test_case "diversity family" `Quick test_beta_diversity_family;
          Alcotest.test_case "budget degradation" `Quick
            test_beta_budget_degrades_gracefully;
          Alcotest.test_case "claw witness" `Quick test_beta_claw_witness;
          Alcotest.test_case "greedy lower" `Quick test_beta_greedy_lower;
          Alcotest.test_case "sampled lower" `Quick test_beta_sampled_lower;
        ] );
      ( "arboricity",
        [
          Alcotest.test_case "degeneracy known" `Quick test_degeneracy_known;
          Alcotest.test_case "order property" `Quick
            test_degeneracy_order_property;
          Alcotest.test_case "density sandwich" `Quick test_density_and_sandwich;
          Alcotest.test_case "orientation" `Quick test_orientation;
        ] );
      ( "io",
        [
          Alcotest.test_case "string roundtrip" `Quick test_graph_io_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick
            test_graph_io_file_roundtrip;
          Alcotest.test_case "tolerant input" `Quick test_graph_io_tolerant_input;
          Alcotest.test_case "rejects malformed" `Quick
            test_graph_io_rejects_malformed;
          Alcotest.test_case "parse error details" `Quick
            test_graph_io_parse_errors;
          Alcotest.test_case "trailing whitespace" `Quick
            test_graph_io_trailing_whitespace;
          Alcotest.test_case "msgr roundtrip" `Quick test_msgr_roundtrip;
          Alcotest.test_case "msgr verify and materialize" `Quick
            test_msgr_verify_and_materialize;
          Alcotest.test_case "msgr rejects garbage" `Quick
            test_msgr_rejects_garbage;
        ] );
      ("properties", qsuite);
    ]
