(* Tests for mspar_lca: the local-access oracle and its memo layer.

   The load-bearing property is bit-for-bit parity: every oracle answer
   must equal the materialized seeded batch construction on the same
   (seed, graph, delta, rule) — [Gdelta.sparsify_seeded] for sparsifier
   queries, rank-ordered greedy maximal matching on that sparsifier for
   matching queries.  On top of parity, a hard probe gate pins the
   whole point of the oracle: a cold [in_gdelta] costs O(delta) probes
   plus a constant, independent of n. *)

open Mspar_prelude
open Mspar_graph
open Mspar_core
open Mspar_lca

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Cache: bounded LRU semantics                                       *)
(* ------------------------------------------------------------------ *)

let test_cache_basics () =
  let c = Cache.create ~capacity:2 in
  check_bool "miss on empty" true (Cache.find c 1 = None);
  Cache.put c 1 "a";
  Cache.put c 2 "b";
  check_bool "hit 1" true (Cache.find c 1 = Some "a");
  check_bool "hit 2" true (Cache.find c 2 = Some "b");
  check_int "len" 2 (Cache.length c);
  (* 1 was just touched via the hit order above: 2 is now LRU after
     re-touching 1 *)
  ignore (Cache.find c 1);
  Cache.put c 3 "c";
  check_bool "2 evicted (LRU)" true (Cache.find c 2 = None);
  check_bool "1 kept (MRU)" true (Cache.find c 1 = Some "a");
  check_bool "3 present" true (Cache.find c 3 = Some "c");
  let s = Cache.stats c in
  check_int "evictions" 1 s.Cache.evictions;
  check_int "insertions" 3 s.Cache.insertions

let test_cache_remove_clear () =
  let c = Cache.create ~capacity:4 in
  Cache.put c 10 1;
  Cache.put c 20 2;
  Cache.remove c 10;
  check_bool "removed" true (Cache.find c 10 = None);
  check_int "len after remove" 1 (Cache.length c);
  Cache.remove c 999 (* no-op *);
  Cache.put c 30 3;
  Cache.put c 40 4;
  Cache.put c 50 5;
  check_int "len at capacity" 4 (Cache.length c);
  Cache.clear c;
  check_int "len after clear" 0 (Cache.length c);
  check_bool "cleared" true (Cache.find c 20 = None);
  let s = Cache.stats c in
  check_bool "invalidations counted" true (s.Cache.invalidations >= 5);
  (* slots recycle cleanly after clear *)
  Cache.put c 60 6;
  check_bool "usable after clear" true (Cache.find c 60 = Some 6)

let test_cache_overwrite () =
  let c = Cache.create ~capacity:2 in
  Cache.put c 1 "a";
  Cache.put c 1 "b";
  check_int "overwrite keeps one entry" 1 (Cache.length c);
  check_bool "overwritten value" true (Cache.find c 1 = Some "b");
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Cache.create: capacity must be >= 1") (fun () ->
      ignore (Cache.create ~capacity:0))

(* ------------------------------------------------------------------ *)
(* Replay discipline: Rng.derive is the shared split-seed stream      *)
(* ------------------------------------------------------------------ *)

let test_derive_agrees_with_par_gdelta () =
  for seed = 0 to 4 do
    for v = 0 to 50 do
      let a = Rng.derive ~seed v in
      let b = Mspar_parallel.Par_gdelta.vertex_rng ~seed v in
      check_bool "same state" true (Rng.state a = Rng.state b);
      check_bool "same draw" true (Int64.equal (Rng.bits64 a) (Rng.bits64 b))
    done
  done

let test_seeded_builders_agree () =
  let rng = Rng.create 11 in
  for seed = 1 to 5 do
    let g = Gen.gnp rng ~n:60 ~p:0.25 in
    let s1, _ = Gdelta.sparsify_seeded ~seed g ~delta:3 in
    let s2 = Mspar_parallel.Par_gdelta.sequential ~seed g ~delta:3 in
    check_bool "sparsify_seeded = Par_gdelta.sequential" true
      (Graph.equal s1 s2)
  done

(* ------------------------------------------------------------------ *)
(* Parity references                                                  *)
(* ------------------------------------------------------------------ *)

(* Greedy maximal matching on the materialized sparsifier, in the exact
   (rank, a, b) order the oracle simulates locally. *)
let reference_matching ~seed sg =
  let edges = Array.to_list (Graph.edges sg) in
  let ranked =
    List.map (fun (u, v) -> (Oracle.edge_rank ~seed u v, u, v)) edges
  in
  let cmp (r1, a1, b1) (r2, a2, b2) =
    if r1 <> r2 then compare r1 r2
    else if a1 <> a2 then compare a1 a2
    else compare b1 b2
  in
  let ranked = List.sort cmp ranked in
  let matched = Array.make (Graph.n sg) false in
  let in_mm = Hashtbl.create 64 in
  List.iter
    (fun (_, u, v) ->
      if (not matched.(u)) && not matched.(v) then begin
        matched.(u) <- true;
        matched.(v) <- true;
        Hashtbl.replace in_mm (u, v) ()
      end)
    ranked;
  (matched, in_mm)

let oracle_of_static ?rule g ~seed ~delta =
  Oracle.create ?rule (Adj.of_static g) ~seed ~delta

(* Every pairwise sparsifier answer and every per-vertex mark list must
   match the batch build. *)
let assert_sparsifier_parity ?rule g ~seed ~delta =
  let o = oracle_of_static ?rule g ~seed ~delta in
  let sg, _ = Gdelta.sparsify_seeded ?rule ~seed g ~delta in
  let n = Graph.n g in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Oracle.in_gdelta o ~u ~v <> Graph.has_edge sg u v then
        Alcotest.failf "in_gdelta mismatch at (%d,%d) seed=%d delta=%d" u v
          seed delta
    done
  done;
  (* directed mark lists against the raw marked codes *)
  let buf, shift = Gdelta.marked_codes_seeded ?rule ~seed g ~delta in
  let per_vertex = Array.make n [] in
  Edgebuf.iter
    (fun code ->
      let v = code lsr shift and u = code land ((1 lsl shift) - 1) in
      per_vertex.(v) <- u :: per_vertex.(v))
    buf;
  for v = 0 to n - 1 do
    let want = List.sort_uniq Stdlib.compare per_vertex.(v) in
    let got = Array.to_list (Oracle.marked_neighbors o v) in
    if want <> got then Alcotest.failf "marked_neighbors mismatch at %d" v
  done

let assert_matching_parity ?rule g ~seed ~delta =
  let o = oracle_of_static ?rule g ~seed ~delta in
  let sg, _ = Gdelta.sparsify_seeded ?rule ~seed g ~delta in
  let matched, in_mm = reference_matching ~seed sg in
  for v = 0 to Graph.n g - 1 do
    if Oracle.is_matched o v <> matched.(v) then
      Alcotest.failf "is_matched mismatch at %d seed=%d" v seed
  done;
  Array.iter
    (fun (u, v) ->
      if Oracle.in_matching o ~u ~v <> Hashtbl.mem in_mm (u, v) then
        Alcotest.failf "in_matching mismatch at (%d,%d) seed=%d" u v seed)
    (Graph.edges sg)

let test_sparsifier_parity_families () =
  let rng = Rng.create 3 in
  List.iter
    (fun (g, name) ->
      ignore name;
      List.iter
        (fun seed ->
          assert_sparsifier_parity g ~seed ~delta:2;
          assert_sparsifier_parity g ~seed ~delta:4;
          assert_sparsifier_parity ~rule:Gdelta.Mark_all_at_most_delta g ~seed
            ~delta:3)
        [ 1; 7; 42 ])
    [
      (Gen.gnp rng ~n:35 ~p:0.2, "gnp");
      (Gen.star 30, "star");
      (Gen.complete 18, "complete");
      (Gen.path 25, "path");
      (Gen.disjoint_cliques rng ~n:30 ~k:5, "cliques");
    ]

let test_matching_parity_families () =
  let rng = Rng.create 5 in
  List.iter
    (fun g ->
      List.iter
        (fun seed ->
          assert_matching_parity g ~seed ~delta:3;
          assert_matching_parity ~rule:Gdelta.Mark_all_at_most_delta g ~seed
            ~delta:2)
        [ 2; 13 ])
    [
      Gen.gnp rng ~n:24 ~p:0.25;
      Gen.star 20;
      Gen.complete 12;
      Gen.perfect_matching 10;
    ]

let qcheck_oracle_parity =
  QCheck.Test.make ~name:"oracle parity on random graphs" ~count:40
    QCheck.(triple (int_range 2 30) (int_range 1 5) (int_range 0 10_000))
    (fun (n, delta, seed) ->
      let rng = Rng.create (seed + (31 * n)) in
      let g = Gen.gnp rng ~n ~p:0.3 in
      assert_sparsifier_parity g ~seed ~delta;
      assert_matching_parity g ~seed ~delta;
      true)

(* ------------------------------------------------------------------ *)
(* The probe gate: cold queries are O(delta), independent of n        *)
(* ------------------------------------------------------------------ *)

(* A cold [in_gdelta] replays at most 2*keep <= 4*delta adjacency reads
   for the two endpoint mark lists, plus the binary search inside
   [has_edge] — logarithmic, bounded by one word width.  The bound below
   is absolute: the same constant must hold at every n, or the oracle
   is quietly reading neighborhoods it shouldn't. *)
let probe_budget ~delta = (4 * delta) + 64

let test_cold_probe_budget () =
  let delta = 4 in
  List.iter
    (fun n ->
      let rng = Rng.create (n + 1) in
      List.iter
        (fun g ->
          let o = oracle_of_static g ~seed:9 ~delta in
          (* query across an actual edge so both mark replays run *)
          let u, v = (Graph.edges g).(0) in
          Oracle.reset_probes o;
          ignore (Oracle.in_gdelta o ~u ~v);
          let cold = Oracle.probes o in
          if cold > probe_budget ~delta then
            Alcotest.failf "cold in_gdelta used %d probes (budget %d) at n=%d"
              cold (probe_budget ~delta) n;
          (* warm repeat: the edge-level memo answers at zero probes *)
          Oracle.reset_probes o;
          ignore (Oracle.in_gdelta o ~u ~v);
          let warm = Oracle.probes o in
          if warm <> 0 then
            Alcotest.failf "warm in_gdelta used %d probes at n=%d" warm n;
          let s = Oracle.stats o in
          check_bool "warm repeat hit the memo" true
            (s.Oracle.edge_cache.Cache.hits > 0))
        [
          Gen.gnp rng ~n ~p:(8.0 /. float_of_int n);
          Gen.star n;
          Gen.complete (Int.min n 64);
        ])
    [ 1_000; 4_000; 16_000 ]

(* ------------------------------------------------------------------ *)
(* Dynamic adjacency: parity under interleaved updates + invalidation *)
(* ------------------------------------------------------------------ *)

let test_dyn_parity_under_updates () =
  let n = 28 and delta = 3 and seed = 17 in
  let dg = Mspar_dynamic.Dyn_graph.create n in
  let o = Oracle.create (Adj.of_dyn dg) ~seed ~delta in
  let rng = Rng.create 23 in
  let check_against_snapshot () =
    let g = Mspar_dynamic.Dyn_graph.snapshot dg in
    let sg, _ = Gdelta.sparsify_seeded ~seed g ~delta in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if Oracle.in_gdelta o ~u ~v <> Graph.has_edge sg u v then
          Alcotest.failf "dyn in_gdelta mismatch at (%d,%d)" u v
      done
    done;
    let matched, _ = reference_matching ~seed sg in
    for v = 0 to n - 1 do
      if Oracle.is_matched o v <> matched.(v) then
        Alcotest.failf "dyn is_matched mismatch at %d" v
    done
  in
  for step = 1 to 400 do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then begin
      let changed =
        if Rng.bool rng then Mspar_dynamic.Dyn_graph.insert dg u v
        else Mspar_dynamic.Dyn_graph.delete dg u v
      in
      (* the serve daemon's rule: invalidate on every applied change *)
      if changed then Oracle.invalidate_edge o u v
    end;
    if step mod 80 = 0 then check_against_snapshot ()
  done;
  Oracle.invalidate_all o;
  check_against_snapshot ()

(* Skipping invalidation must be observable: this is exactly the stale
   read the dispatcher's read-your-writes contract rules out. *)
let test_stale_without_invalidation () =
  let n = 8 and delta = 1 and seed = 2 in
  let dg = Mspar_dynamic.Dyn_graph.create n in
  ignore (Mspar_dynamic.Dyn_graph.insert dg 0 1);
  let o = Oracle.create (Adj.of_dyn dg) ~seed ~delta in
  check_bool "edge present before delete" true (Oracle.in_gdelta o ~u:0 ~v:1);
  ignore (Mspar_dynamic.Dyn_graph.delete dg 0 1);
  (* without invalidation the mark memo is stale but has_edge already
     answers false — the memo only poisons derived state; flip it back
     on and the stale mark array must be refreshed by invalidation *)
  ignore (Mspar_dynamic.Dyn_graph.insert dg 0 2);
  let stale = Oracle.marked_neighbors o 0 in
  Oracle.invalidate_edge o 0 2;
  let fresh = Oracle.marked_neighbors o 0 in
  check_bool "stale memo differs from refreshed replay" true (stale <> fresh);
  check_bool "refreshed marks see the new edge" true
    (Array.exists (fun y -> y = 2) fresh)

let () =
  Alcotest.run "mspar_lca"
    [
      ( "cache",
        [
          Alcotest.test_case "lru basics" `Quick test_cache_basics;
          Alcotest.test_case "remove/clear" `Quick test_cache_remove_clear;
          Alcotest.test_case "overwrite + bad capacity" `Quick
            test_cache_overwrite;
        ] );
      ( "replay",
        [
          Alcotest.test_case "Rng.derive = Par_gdelta.vertex_rng" `Quick
            test_derive_agrees_with_par_gdelta;
          Alcotest.test_case "seeded builders agree" `Quick
            test_seeded_builders_agree;
        ] );
      ( "parity",
        [
          Alcotest.test_case "sparsifier parity across families" `Quick
            test_sparsifier_parity_families;
          Alcotest.test_case "matching parity across families" `Quick
            test_matching_parity_families;
        ] );
      ( "probes",
        [ Alcotest.test_case "cold O(delta) gate" `Quick test_cold_probe_budget ] );
      ( "dynamic",
        [
          Alcotest.test_case "parity under interleaved updates" `Quick
            test_dyn_parity_under_updates;
          Alcotest.test_case "stale without invalidation" `Quick
            test_stale_without_invalidation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ qcheck_oracle_parity ] );
    ]
