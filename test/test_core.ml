(* Tests for mspar_core: the G_delta sparsifier (Theorem 2.1 and its
   supporting observations), the Solomon bounded-degree sparsifier, the
   composed two-round sparsifier, and the sequential pipeline. *)

open Mspar_prelude
open Mspar_graph
open Mspar_matching
open Mspar_core

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Delta_param                                                        *)
(* ------------------------------------------------------------------ *)

let test_delta_param () =
  let d1 = Delta_param.scaled ~multiplier:1.0 ~beta:1 ~eps:0.5 in
  let d2 = Delta_param.scaled ~multiplier:2.0 ~beta:1 ~eps:0.5 in
  check_bool "multiplier monotone" true (d2 >= d1);
  let d3 = Delta_param.scaled ~multiplier:1.0 ~beta:2 ~eps:0.5 in
  check_bool "beta monotone" true (d3 >= d1);
  let d4 = Delta_param.scaled ~multiplier:1.0 ~beta:1 ~eps:0.1 in
  check_bool "eps monotone" true (d4 >= d1);
  check_bool "paper >= practical" true
    (Delta_param.paper ~beta:3 ~eps:0.2 >= Delta_param.practical ~beta:3 ~eps:0.2);
  Alcotest.check_raises "eps = 0 rejected"
    (Invalid_argument "Delta_param: eps must lie in (0, 1)") (fun () ->
      ignore (Delta_param.paper ~beta:1 ~eps:0.0));
  Alcotest.check_raises "beta = 0 rejected"
    (Invalid_argument "Delta_param: beta must be >= 1") (fun () ->
      ignore (Delta_param.paper ~beta:0 ~eps:0.5));
  check_bool "regime holds for dense reasonable case" true
    (Delta_param.regime_ok ~n:10_000 ~beta:2 ~eps:0.5);
  check_bool "regime fails for beta ~ n" false
    (Delta_param.regime_ok ~n:10_000 ~beta:9_999 ~eps:0.1)

(* ------------------------------------------------------------------ *)
(* Gdelta structure                                                   *)
(* ------------------------------------------------------------------ *)

let test_gdelta_is_subgraph () =
  let rng = Rng.create 1 in
  for _ = 0 to 9 do
    let g = Gen.gnp rng ~n:40 ~p:0.3 in
    let s, stats = Gdelta.sparsify rng g ~delta:4 in
    check_bool "subgraph" true (Graph.is_subgraph ~sub:s ~super:g);
    check "edge count in stats" (Graph.m s) stats.Gdelta.edges;
    check_bool "marks >= edges" true (stats.Gdelta.marks >= stats.Gdelta.edges)
  done

let test_gdelta_low_degree_keeps_all () =
  let rng = Rng.create 2 in
  (* a path has max degree 2 <= delta: the sparsifier must be the graph *)
  let g = Gen.path 30 in
  let s, _ = Gdelta.sparsify rng g ~delta:2 in
  check_bool "path preserved" true (Graph.equal s g);
  (* rule Mark_all_at_most_delta with delta = 3: every vertex of degree <= 3
     keeps its whole neighborhood *)
  let g = Gen.gnp rng ~n:30 ~p:0.1 in
  let s, _ =
    Gdelta.sparsify ~rule:Gdelta.Mark_all_at_most_delta rng g ~delta:3
  in
  for v = 0 to Graph.n g - 1 do
    if Graph.degree g v <= 3 then
      Graph.iter_neighbors g v (fun u ->
          check_bool "low-degree edge kept" true (Graph.has_edge s v u))
  done

let test_gdelta_min_degree_guarantee () =
  (* every vertex marks min(deg, delta) edges, so its sparsifier degree is
     at least that *)
  let rng = Rng.create 3 in
  let g = Gen.gnp rng ~n:60 ~p:0.4 in
  let delta = 5 in
  let s, _ = Gdelta.sparsify rng g ~delta in
  for v = 0 to Graph.n g - 1 do
    check_bool "degree lower bound" true
      (Graph.degree s v >= min (Graph.degree g v) delta)
  done

let test_gdelta_size_bounds () =
  let rng = Rng.create 4 in
  let g = Gen.complete 80 in
  let delta = 6 in
  let s, stats = Gdelta.sparsify rng g ~delta in
  check_bool "naive size bound" true (Graph.m s <= Graph.n g * 2 * delta);
  check_bool "probes linear in n*delta" true
    (stats.Gdelta.probes <= Graph.n g * 2 * delta);
  check_bool "probes sublinear vs m" true (stats.Gdelta.probes < 2 * Graph.m g)

let test_gdelta_determinism () =
  let g = Gen.gnp (Rng.create 5) ~n:50 ~p:0.3 in
  let s1, _ = Gdelta.sparsify (Rng.create 77) g ~delta:4 in
  let s2, _ = Gdelta.sparsify (Rng.create 77) g ~delta:4 in
  check_bool "same seed, same sparsifier" true (Graph.equal s1 s2);
  let s3, _ = Gdelta.sparsify (Rng.create 78) g ~delta:4 in
  check_bool "different seed differs" false (Graph.equal s1 s3)

let test_gdelta_rejects_bad_delta () =
  let g = Gen.path 4 in
  Alcotest.check_raises "delta 0" (Invalid_argument "Gdelta: delta must be >= 1")
    (fun () -> ignore (Gdelta.sparsify (Rng.create 0) g ~delta:0))

(* ------------------------------------------------------------------ *)
(* Theorem 2.1: approximation quality                                 *)
(* ------------------------------------------------------------------ *)

let ratio_on g ~beta ~eps ~multiplier rng =
  let delta = Delta_param.scaled ~multiplier ~beta ~eps in
  let s, _ = Gdelta.sparsify rng g ~delta in
  let opt_g = Matching.size (Blossom.solve g) in
  let opt_s = Matching.size (Blossom.solve s) in
  Properties.approximation_ratio ~mcm_g:opt_g ~mcm_sparsifier:opt_s

let test_theorem_2_1_families () =
  let rng = Rng.create 6 in
  let eps = 0.5 in
  let r = ratio_on (Gen.complete 60) ~beta:1 ~eps ~multiplier:1.0 rng in
  check_bool (Printf.sprintf "K60 ratio %.3f" r) true (r <= 1.0 +. eps);
  let lg = Line_graph.random_base rng ~base_n:16 ~p:0.5 in
  let r = ratio_on lg ~beta:2 ~eps ~multiplier:1.0 rng in
  check_bool (Printf.sprintf "line graph ratio %.3f" r) true (r <= 1.0 +. eps);
  let udg, _ = Unit_disk.random rng ~n:120 ~radius:0.2 in
  let r = ratio_on udg ~beta:5 ~eps ~multiplier:1.0 rng in
  check_bool (Printf.sprintf "unit disk ratio %.3f" r) true (r <= 1.0 +. eps);
  let dc = Gen.disjoint_cliques rng ~n:90 ~k:5 in
  let r = ratio_on dc ~beta:1 ~eps ~multiplier:1.0 rng in
  check_bool (Printf.sprintf "cliques ratio %.3f" r) true (r <= 1.0 +. eps)

let test_theorem_2_1_repeated_trials () =
  (* the guarantee is whp: run many independent trials on one instance *)
  let rng = Rng.create 7 in
  let g = Gen.complete 50 in
  let eps = 0.5 in
  let delta = Delta_param.scaled ~multiplier:1.0 ~beta:1 ~eps in
  let opt = Matching.size (Blossom.solve g) in
  for _ = 1 to 20 do
    let s, _ = Gdelta.sparsify rng g ~delta in
    let opt_s = Matching.size (Blossom.solve s) in
    check_bool "trial within 1+eps" true
      (float_of_int opt <= (1.0 +. eps) *. float_of_int opt_s)
  done

(* ------------------------------------------------------------------ *)
(* Obs 2.10 / 2.12 / Lemma 2.2                                        *)
(* ------------------------------------------------------------------ *)

let test_obs_2_10_size () =
  let rng = Rng.create 8 in
  List.iter
    (fun (g, beta) ->
      let delta = 5 in
      let s, _ = Gdelta.sparsify rng g ~delta in
      let mcm = Matching.size (Blossom.solve g) in
      check_bool "size bound obs 2.10" true
        (Properties.size_bound_obs_2_10 ~sparsifier:s ~mcm_size:mcm ~delta
           ~beta))
    [
      (Gen.complete 40, 1);
      (Gen.disjoint_cliques rng ~n:60 ~k:4, 1);
      (Line_graph.random_base rng ~base_n:14 ~p:0.5, 2);
    ]

let test_obs_2_12_arboricity () =
  let rng = Rng.create 9 in
  List.iter
    (fun delta ->
      let g = Gen.complete 70 in
      let s, _ = Gdelta.sparsify rng g ~delta in
      check_bool "density lower bound <= 4 delta" true
        (Properties.arboricity_bound_obs_2_12 ~sparsifier:s ~delta);
      check_bool "degeneracy sandwich" true
        (Properties.degeneracy_within ~sparsifier:s ~delta))
    [ 2; 5; 10 ]

let test_lemma_2_2 () =
  let rng = Rng.create 10 in
  List.iter
    (fun (g, beta) ->
      let mcm = Matching.size (Blossom.solve g) in
      check_bool "lemma 2.2" true
        (Properties.mcm_lower_bound_lemma_2_2 g ~mcm_size:mcm ~beta))
    [
      (Gen.complete 30, 1);
      (Gen.star 10, 9);
      (Gen.cycle 15, 2);
      (Gen.disjoint_cliques rng ~n:40 ~k:3, 1);
      (fst (Unit_disk.random rng ~n:80 ~radius:0.3), 5);
    ]

(* ------------------------------------------------------------------ *)
(* Lemma 2.13: deterministic marking fails                            *)
(* ------------------------------------------------------------------ *)

let test_lemma_2_13_deterministic_fails () =
  (* On K_n minus an edge among high-indexed vertices, first-k marking
     concentrates all sparsifier edges on low-indexed vertices, capping the
     matching near delta while MCM(G) = n/2. *)
  let n = 60 and delta = 4 in
  let g = Gen.clique_minus_edge ~n ~missing:(n - 1, n - 2) in
  let s = Gdelta.deterministic_first_k g ~delta in
  let det = Matching.size (Blossom.solve s) in
  let opt = Matching.size (Blossom.solve g) in
  check "clique minus edge has near-perfect matching" (n / 2) opt;
  check_bool
    (Printf.sprintf "deterministic matching small: %d vs opt %d" det opt)
    true
    (det <= (2 * delta) + 2);
  let rng = Rng.create 11 in
  let sr, _ = Gdelta.sparsify rng g ~delta in
  let rand = Matching.size (Blossom.solve sr) in
  check_bool
    (Printf.sprintf "randomized beats deterministic: %d vs %d" rand det)
    true (rand > 2 * det)

(* ------------------------------------------------------------------ *)
(* Obs 2.14: exact preservation needs delta ~ n                       *)
(* ------------------------------------------------------------------ *)

let test_obs_2_14_bridge_probability () =
  let half = 51 in
  let g, (a, b) = Gen.two_cliques_bridge ~half in
  let n = 2 * half in
  let delta = 5 in
  let rng = Rng.create 12 in
  let trials = 400 in
  let hits = ref 0 in
  for _ = 1 to trials do
    let pairs = Gdelta.marked_pairs rng g ~delta in
    if List.exists (fun (u, v) -> (u = a && v = b) || (u = b && v = a)) pairs
    then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int trials in
  let q = 1.0 -. (2.0 *. float_of_int delta /. float_of_int n) in
  let predicted = 1.0 -. (q *. q) in
  check_bool
    (Printf.sprintf "bridge frequency %.3f vs predicted %.3f" freq predicted)
    true
    (Float.abs (freq -. predicted) <= 0.08);
  (* the qualitative content of Obs 2.14: at delta << n the bridge is almost
     always missed, so exactness fails with probability near 1 *)
  check_bool "well below certainty" true (freq < 0.35)

(* ------------------------------------------------------------------ *)
(* Lemma 2.13 as an executable game                                   *)
(* ------------------------------------------------------------------ *)

(* the natural deterministic strategy: probe delta entries per vertex and
   output exactly what was revealed *)
let first_k_strategy (o : Lower_bound.oracle) =
  let acc = ref [] in
  for v = 0 to o.Lower_bound.n - 1 do
    for _ = 1 to o.Lower_bound.delta do
      acc := (v, o.Lower_bound.probe v) :: !acc
    done
  done;
  !acc

let test_lower_bound_game_first_k () =
  List.iter
    (fun (n, delta) ->
      match Lower_bound.play first_k_strategy ~n ~delta with
      | Lower_bound.Small_matching s ->
          check_bool
            (Printf.sprintf "n=%d d=%d: matching %d <= delta" n delta s)
            true (s <= delta)
      | Lower_bound.Infeasible _ ->
          Alcotest.fail "honest strategy should stay feasible")
    [ (10, 2); (20, 4); (40, 6); (60, 10) ]

let test_lower_bound_game_cheater () =
  (* outputting an unprobed edge outside D gets caught *)
  let cheater (o : Lower_bound.oracle) =
    [ (o.Lower_bound.n - 2, o.Lower_bound.n - 1) ]
  in
  match Lower_bound.play cheater ~n:20 ~delta:3 with
  | Lower_bound.Infeasible (18, 19) -> ()
  | Lower_bound.Infeasible _ -> Alcotest.fail "wrong edge flagged"
  | Lower_bound.Small_matching _ -> Alcotest.fail "cheater must be infeasible"

let test_lower_bound_game_greedy_matching_attempt () =
  (* a smarter strategy: output a perfect matching among the answers it can
     actually trust... it still cannot beat delta, because every trusted
     edge touches the decoy set *)
  let strategy (o : Lower_bound.oracle) =
    let acc = ref [] in
    for v = o.Lower_bound.delta to o.Lower_bound.n - 1 do
      (* probe once and keep a single edge per outside vertex *)
      acc := (v, o.Lower_bound.probe v) :: !acc
    done;
    !acc
  in
  match Lower_bound.play strategy ~n:30 ~delta:5 with
  | Lower_bound.Small_matching s -> check_bool "still <= delta" true (s <= 5)
  | Lower_bound.Infeasible _ -> Alcotest.fail "touches only D, must be feasible"

let test_lower_bound_game_budget_enforced () =
  let over_prober (o : Lower_bound.oracle) =
    for _ = 0 to o.Lower_bound.delta do
      ignore (o.Lower_bound.probe 0)
    done;
    []
  in
  Alcotest.check_raises "budget"
    (Invalid_argument "Lower_bound: probe budget exceeded") (fun () ->
      ignore (Lower_bound.play over_prober ~n:10 ~delta:2))

(* ------------------------------------------------------------------ *)
(* Solomon / Compose                                                  *)
(* ------------------------------------------------------------------ *)

let test_solomon_degree_bound () =
  let rng = Rng.create 13 in
  List.iter
    (fun da ->
      let g = Gen.gnp rng ~n:80 ~p:0.2 in
      let s = Solomon.sparsify g ~delta_alpha:da in
      check_bool "subgraph" true (Graph.is_subgraph ~sub:s ~super:g);
      check_bool "max degree bound" true (Graph.max_degree s <= da))
    [ 1; 3; 8 ]

let test_solomon_on_bounded_arboricity () =
  let g = Gen.grid ~rows:8 ~cols:8 in
  let alpha = Arboricity.degeneracy g in
  let da = Solomon.delta_alpha ~alpha ~eps:0.5 in
  let s = Solomon.sparsify g ~delta_alpha:da in
  let opt = Matching.size (Blossom.solve g) in
  let opt_s = Matching.size (Blossom.solve s) in
  check_bool
    (Printf.sprintf "grid preserved: %d vs %d" opt_s opt)
    true
    (float_of_int opt <= 1.5 *. float_of_int opt_s)

let test_compose () =
  let rng = Rng.create 15 in
  let g = Gen.complete 70 in
  let eps = 0.5 in
  let r = Compose.run ~multiplier:1.0 rng g ~beta:1 ~eps in
  check_bool "bounded is subgraph of gdelta" true
    (Graph.is_subgraph ~sub:r.Compose.bounded ~super:r.Compose.gdelta);
  check_bool "gdelta is subgraph of g" true
    (Graph.is_subgraph ~sub:r.Compose.gdelta ~super:g);
  check_bool "max degree within delta_alpha" true
    (r.Compose.max_degree <= r.Compose.delta_alpha);
  let opt = Matching.size (Blossom.solve g) in
  let opt_b = Matching.size (Blossom.solve r.Compose.bounded) in
  check_bool
    (Printf.sprintf "composed ratio: %d vs %d" opt_b opt)
    true
    (float_of_int opt <= (1.0 +. (3.0 *. eps)) *. float_of_int opt_b)

(* ------------------------------------------------------------------ *)
(* EDCS (comparison sparsifier)                                       *)
(* ------------------------------------------------------------------ *)

let test_edcs_invariants () =
  let rng = Rng.create 71 in
  List.iter
    (fun (g, bound) ->
      let h = Edcs.construct g ~bound in
      check_bool "subgraph" true (Graph.is_subgraph ~sub:h ~super:g);
      check_bool "P1" true (Edcs.check_p1 g ~edcs:h ~bound);
      check_bool "P2" true (Edcs.check_p2 g ~edcs:h ~bound);
      (* P1 forces max degree < bound *)
      check_bool "degree below bound" true (Graph.max_degree h < bound))
    [
      (Gen.complete 40, 8);
      (Gen.gnp rng ~n:60 ~p:0.3, 6);
      (Gen.star 20, 4);
      (Gen.path 15, 3);
      (Gen.empty 5, 2);
      (fst (Unit_disk.random rng ~n:80 ~radius:0.3), 10);
    ]

let test_edcs_three_halves () =
  let rng = Rng.create 72 in
  for _ = 0 to 9 do
    let g = Gen.gnp rng ~n:50 ~p:0.3 in
    let h = Edcs.construct g ~bound:16 in
    let opt = Matching.size (Blossom.solve g) in
    let oh = Matching.size (Blossom.solve h) in
    check_bool
      (Printf.sprintf "3/2 bound: %d vs %d" oh opt)
      true
      (* 3/2 + slack for the finite bound *)
      (float_of_int opt <= 1.6 *. float_of_int (max 1 oh))
  done

let test_edcs_deterministic_and_sized () =
  let g = Gen.complete 50 in
  let h1 = Edcs.construct g ~bound:10 in
  let h2 = Edcs.construct g ~bound:10 in
  check_bool "deterministic" true (Graph.equal h1 h2);
  (* P1 gives |E(H)| <= n * bound / 2 *)
  check_bool "size bound" true (Graph.m h1 <= Graph.n g * 10 / 2);
  Alcotest.check_raises "bound >= 2"
    (Invalid_argument "Edcs.construct: bound >= 2") (fun () ->
      ignore (Edcs.construct g ~bound:1))

(* ------------------------------------------------------------------ *)
(* Pipeline (Theorem 3.1)                                             *)
(* ------------------------------------------------------------------ *)

let test_pipeline_quality () =
  let rng = Rng.create 16 in
  let g = Gen.complete 80 in
  let eps = 0.5 in
  let r = Pipeline.run ~multiplier:1.0 rng g ~beta:1 ~eps in
  check_bool "valid on original graph" true
    (Matching.is_valid g r.Pipeline.matching);
  let opt = Matching.size (Blossom.solve g) in
  check_bool
    (Printf.sprintf "pipeline size %d vs opt %d"
       (Matching.size r.Pipeline.matching)
       opt)
    true
    (float_of_int opt
    <= (1.0 +. eps) *. (1.0 +. eps)
       *. float_of_int (Matching.size r.Pipeline.matching))

let test_pipeline_sublinear_probes () =
  let rng = Rng.create 17 in
  let g = Gen.complete 300 in
  let r = Pipeline.run ~multiplier:1.0 rng g ~beta:1 ~eps:0.5 in
  check_bool "read less than the input" true
    (Pipeline.sublinearity_ratio r < 0.5);
  check "input edges recorded" (Graph.m g) r.Pipeline.input_edges

let test_pipeline_matcher_modes () =
  let rng = Rng.create 18 in
  let g = Gen.gnp rng ~n:60 ~p:0.3 in
  List.iter
    (fun matcher ->
      let r = Pipeline.run ~matcher rng g ~beta:6 ~eps:0.5 in
      check_bool "valid" true (Matching.is_valid g r.Pipeline.matching);
      check_bool "nonempty" true (Matching.size r.Pipeline.matching > 0))
    [ Pipeline.Exact; Pipeline.Approx_eps; Pipeline.Greedy_2approx ]

(* ------------------------------------------------------------------ *)
(* Property tests                                                     *)
(* ------------------------------------------------------------------ *)

let qcheck_subgraph_and_degree =
  QCheck.Test.make ~name:"gdelta is a subgraph with min-degree guarantee"
    ~count:50
    QCheck.(triple (int_range 5 40) (int_range 1 8) (int_range 0 1000))
    (fun (n, delta, seed) ->
      let rng = Rng.create seed in
      let g = Gen.gnp rng ~n ~p:0.3 in
      let s, _ = Gdelta.sparsify rng g ~delta in
      Graph.is_subgraph ~sub:s ~super:g
      && Array.for_all
           (fun v -> Graph.degree s v >= min (Graph.degree g v) delta)
           (Array.init n (fun i -> i)))

let qcheck_sparsifier_never_hurts_much =
  QCheck.Test.make
    ~name:"sparsifier keeps at least a third of the matching at delta=1"
    ~count:50
    QCheck.(pair (int_range 4 30) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Gen.gnp rng ~n ~p:0.4 in
      let s, _ = Gdelta.sparsify rng g ~delta:1 in
      let og = Matching.size (Blossom.solve g) in
      let os = Matching.size (Blossom.solve s) in
      og = 0 || os * 3 >= og)

let qcheck_obs_2_10 =
  QCheck.Test.make ~name:"size bound of Obs 2.10 holds" ~count:40
    QCheck.(triple (int_range 5 40) (int_range 2 8) (int_range 0 1000))
    (fun (n, delta, seed) ->
      let rng = Rng.create seed in
      let g = Gen.gnp rng ~n ~p:0.5 in
      let s, _ = Gdelta.sparsify rng g ~delta in
      let mcm = Matching.size (Blossom.solve g) in
      let beta = Beta.value (Beta.compute ~budget:200_000 g) in
      Properties.size_bound_obs_2_10 ~sparsifier:s ~mcm_size:mcm ~delta ~beta)

let qcheck_solomon_invariants =
  QCheck.Test.make ~name:"solomon sparsifier: subgraph with degree bound"
    ~count:50
    QCheck.(triple (int_range 2 40) (int_range 1 10) (int_range 0 1000))
    (fun (n, da, seed) ->
      let g = Gen.gnp (Rng.create seed) ~n ~p:0.35 in
      let s = Solomon.sparsify g ~delta_alpha:da in
      Graph.is_subgraph ~sub:s ~super:g && Graph.max_degree s <= da)

let qcheck_edcs_invariants =
  QCheck.Test.make ~name:"edcs: P1 and P2 always hold" ~count:40
    QCheck.(triple (int_range 2 30) (int_range 2 10) (int_range 0 1000))
    (fun (n, bound, seed) ->
      let g = Gen.gnp (Rng.create seed) ~n ~p:0.35 in
      let h = Edcs.construct g ~bound in
      Edcs.check_p1 g ~edcs:h ~bound && Edcs.check_p2 g ~edcs:h ~bound)

let qcheck_compose_degree =
  QCheck.Test.make ~name:"composed sparsifier respects the degree cap"
    ~count:25
    QCheck.(pair (int_range 5 40) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Gen.gnp rng ~n ~p:0.4 in
      let r = Compose.run ~multiplier:0.5 rng g ~beta:4 ~eps:0.5 in
      r.Compose.max_degree <= r.Compose.delta_alpha
      && Graph.is_subgraph ~sub:r.Compose.bounded ~super:g)

let qcheck_lower_bound_game =
  QCheck.Test.make
    ~name:"every delta-probe echo strategy loses the Lemma 2.13 game"
    ~count:25
    QCheck.(pair (int_range 2 8) (int_range 0 1000))
    (fun (delta, seed) ->
      let n = 2 * (delta + 2 + (seed mod 13)) in
      (* the echo strategy (probe the full budget, output every answer)
         across many (n, delta) shapes: always capped at delta *)
      match Lower_bound.play first_k_strategy ~n ~delta with
      | Lower_bound.Small_matching s -> s <= delta
      | Lower_bound.Infeasible _ -> false)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        qcheck_subgraph_and_degree;
        qcheck_sparsifier_never_hurts_much;
        qcheck_obs_2_10;
        qcheck_solomon_invariants;
        qcheck_edcs_invariants;
        qcheck_compose_degree;
        qcheck_lower_bound_game;
      ]
  in
  Alcotest.run "mspar_core"
    [
      ( "delta-param",
        [ Alcotest.test_case "parameter policy" `Quick test_delta_param ] );
      ( "gdelta",
        [
          Alcotest.test_case "subgraph" `Quick test_gdelta_is_subgraph;
          Alcotest.test_case "low degree keeps all" `Quick
            test_gdelta_low_degree_keeps_all;
          Alcotest.test_case "min degree guarantee" `Quick
            test_gdelta_min_degree_guarantee;
          Alcotest.test_case "size bounds" `Quick test_gdelta_size_bounds;
          Alcotest.test_case "determinism" `Quick test_gdelta_determinism;
          Alcotest.test_case "rejects bad delta" `Quick
            test_gdelta_rejects_bad_delta;
        ] );
      ( "theorem-2.1",
        [
          Alcotest.test_case "families" `Quick test_theorem_2_1_families;
          Alcotest.test_case "repeated trials" `Quick
            test_theorem_2_1_repeated_trials;
        ] );
      ( "structure",
        [
          Alcotest.test_case "obs 2.10 size" `Quick test_obs_2_10_size;
          Alcotest.test_case "obs 2.12 arboricity" `Quick
            test_obs_2_12_arboricity;
          Alcotest.test_case "lemma 2.2" `Quick test_lemma_2_2;
          Alcotest.test_case "lemma 2.13 deterministic fails" `Quick
            test_lemma_2_13_deterministic_fails;
          Alcotest.test_case "obs 2.14 bridge probability" `Quick
            test_obs_2_14_bridge_probability;
        ] );
      ( "lower-bound-game",
        [
          Alcotest.test_case "first-k loses" `Quick
            test_lower_bound_game_first_k;
          Alcotest.test_case "cheater caught" `Quick
            test_lower_bound_game_cheater;
          Alcotest.test_case "one-probe strategy loses" `Quick
            test_lower_bound_game_greedy_matching_attempt;
          Alcotest.test_case "budget enforced" `Quick
            test_lower_bound_game_budget_enforced;
        ] );
      ( "solomon",
        [
          Alcotest.test_case "degree bound" `Quick test_solomon_degree_bound;
          Alcotest.test_case "bounded arboricity quality" `Quick
            test_solomon_on_bounded_arboricity;
          Alcotest.test_case "composition" `Quick test_compose;
        ] );
      ( "edcs",
        [
          Alcotest.test_case "invariants" `Quick test_edcs_invariants;
          Alcotest.test_case "3/2 quality" `Quick test_edcs_three_halves;
          Alcotest.test_case "deterministic and sized" `Quick
            test_edcs_deterministic_and_sized;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "quality" `Quick test_pipeline_quality;
          Alcotest.test_case "sublinear probes" `Quick
            test_pipeline_sublinear_probes;
          Alcotest.test_case "matcher modes" `Quick test_pipeline_matcher_modes;
        ] );
      ("properties", qsuite);
    ]
