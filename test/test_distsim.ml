(* Tests for mspar_distsim: the synchronous network simulator, the one-round
   distributed sparsifiers, the proposal-based maximal matching, the
   walker-based (1+eps) algorithm, and the message-complexity comparison
   behind Theorem 3.3. *)

open Mspar_prelude
open Mspar_graph
open Mspar_matching
open Mspar_distsim

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Network semantics                                                  *)
(* ------------------------------------------------------------------ *)

let test_network_basic () =
  let g = Gen.path 3 in
  let net = Network.create g in
  check "no rounds yet" 0 (Network.rounds net);
  Network.send net ~src:0 ~dst:1 ();
  Network.send net ~src:2 ~dst:1 ();
  check "messages counted at send" 2 (Network.messages net);
  check_bool "inbox empty before deliver" true (Network.inbox net 1 = []);
  Network.deliver net;
  check "one round" 1 (Network.rounds net);
  let senders = List.map fst (Network.inbox net 1) |> List.sort compare in
  check_bool "both messages arrived" true (senders = [ 0; 2 ]);
  Network.deliver net;
  check_bool "inbox cleared next round" true (Network.inbox net 1 = [])

let test_network_rejects_non_neighbor () =
  let g = Gen.path 3 in
  let net = Network.create g in
  Alcotest.check_raises "non-neighbor send"
    (Invalid_argument "Network.send: dst is not a neighbor of src") (fun () ->
      Network.send net ~src:0 ~dst:2 ())

let test_network_broadcast_and_bits () =
  let g = Gen.star 5 in
  let net = Network.create ~bit_size:(fun words -> 8 * words) g in
  Network.broadcast net ~src:0 3;
  check "four messages" 4 (Network.messages net);
  check "bits" (4 * 24) (Network.bits net);
  check "max message bits" 24 (Network.max_message_bits net);
  check_bool "congest word positive" true (Network.congest_word net >= 2)

let test_network_skip_rounds () =
  let net = Network.create (Gen.path 2) in
  Network.skip_rounds net 5;
  check "skipped" 5 (Network.rounds net)

(* ------------------------------------------------------------------ *)
(* Distributed sparsifiers                                            *)
(* ------------------------------------------------------------------ *)

let test_dist_gdelta_single_round () =
  let rng = Rng.create 1 in
  let g = Gen.complete 40 in
  let s, st = Sparsify_dist.gdelta rng g ~delta:4 in
  check "one round" 1 st.Sparsify_dist.rounds;
  check_bool "subgraph" true (Graph.is_subgraph ~sub:s ~super:g);
  (* message count = marking events <= n * 2delta, sublinear vs 2m *)
  check_bool "messages sublinear" true
    (st.Sparsify_dist.messages <= Graph.n g * 8);
  check_bool "messages below input size" true
    (st.Sparsify_dist.messages < 2 * Graph.m g);
  (* 1-bit messages *)
  check "bits equal messages" st.Sparsify_dist.messages st.Sparsify_dist.bits;
  (* min-degree guarantee as in the sequential construction *)
  for v = 0 to Graph.n g - 1 do
    check_bool "degree floor" true
      (Graph.degree s v >= min (Graph.degree g v) 4)
  done

let test_dist_gdelta_matches_quality () =
  let rng = Rng.create 2 in
  let g = Gen.complete 60 in
  let s, _ = Sparsify_dist.gdelta rng g ~delta:8 in
  let opt = Matching.size (Blossom.solve g) in
  let opt_s = Matching.size (Blossom.solve s) in
  check_bool
    (Printf.sprintf "distributed sparsifier quality %d vs %d" opt_s opt)
    true
    (float_of_int opt <= 1.5 *. float_of_int opt_s)

let test_dist_solomon () =
  let rng = Rng.create 3 in
  let g = Gen.gnp rng ~n:50 ~p:0.3 in
  let s, st = Sparsify_dist.solomon g ~delta_alpha:5 in
  check "one round" 1 st.Sparsify_dist.rounds;
  check_bool "subgraph" true (Graph.is_subgraph ~sub:s ~super:g);
  check_bool "degree bound" true (Graph.max_degree s <= 5);
  (* must agree with the sequential implementation (same arbitrary rule) *)
  let seq = Mspar_core.Solomon.sparsify g ~delta_alpha:5 in
  check_bool "agrees with sequential" true (Graph.equal s seq)

let test_dist_composed () =
  let rng = Rng.create 4 in
  let g = Gen.complete 50 in
  let s, st = Sparsify_dist.composed rng g ~beta:1 ~eps:0.5 ~multiplier:1.0 () in
  check "two rounds" 2 st.Sparsify_dist.rounds;
  check_bool "subgraph" true (Graph.is_subgraph ~sub:s ~super:g)

(* ------------------------------------------------------------------ *)
(* Distributed maximal matching                                       *)
(* ------------------------------------------------------------------ *)

let test_dist_maximal () =
  let rng = Rng.create 5 in
  for _ = 0 to 9 do
    let g = Gen.gnp rng ~n:40 ~p:0.2 in
    let m, st = Matching_dist.maximal rng g in
    check_bool "valid" true (Matching.is_valid g m);
    check_bool "maximal" true (Matching.is_maximal g m);
    check_bool "rounds logarithmic-ish" true (st.Matching_dist.rounds <= 200)
  done

let test_dist_maximal_empty_and_tiny () =
  let rng = Rng.create 6 in
  let m, st = Matching_dist.maximal rng (Gen.empty 5) in
  check "empty graph" 0 (Matching.size m);
  check "no rounds needed" 0 (st.Matching_dist.rounds);
  let m, _ = Matching_dist.maximal rng (Gen.path 2) in
  check "single edge matched" 1 (Matching.size m)

(* ------------------------------------------------------------------ *)
(* Walker-based (1+eps)                                               *)
(* ------------------------------------------------------------------ *)

let test_dist_one_plus_eps_quality () =
  let rng = Rng.create 7 in
  for trial = 0 to 4 do
    let g = Gen.gnp rng ~n:40 ~p:0.15 in
    let m, _ = Matching_dist.one_plus_eps rng g ~eps:0.34 in
    check_bool "valid" true (Matching.is_valid g m);
    check_bool "maximal" true (Matching.is_maximal g m);
    let opt = Matching.size (Blossom.solve g) in
    check_bool
      (Printf.sprintf "quality trial %d: %d vs opt %d" trial (Matching.size m)
         opt)
      true
      (float_of_int opt <= 1.34 *. float_of_int (Matching.size m))
  done

let test_dist_one_plus_eps_on_paths () =
  (* long paths are the classic hard case for local augmentation *)
  let rng = Rng.create 8 in
  let g = Gen.path 30 in
  let m, _ = Matching_dist.one_plus_eps rng g ~eps:0.25 in
  let opt = Matching.size (Blossom.solve g) in
  check_bool
    (Printf.sprintf "path quality %d vs %d" (Matching.size m) opt)
    true
    (float_of_int opt <= 1.25 *. float_of_int (Matching.size m))

let test_dist_rounds_independent_of_n () =
  (* fixed degree and eps: rounds should not grow with n (the log* n term
     is invisible at these scales; we check near-constancy) *)
  let rounds_for n =
    let rng = Rng.create 9 in
    let g = Gen.cycle n in
    let _, st = Matching_dist.one_plus_eps ~attempts_per_phase:8 rng g ~eps:0.5 in
    st.Matching_dist.rounds
  in
  let r1 = rounds_for 50 and r2 = rounds_for 400 in
  check_bool
    (Printf.sprintf "rounds %d (n=50) vs %d (n=400)" r1 r2)
    true
    (float_of_int r2 <= 3.0 *. float_of_int (max r1 1))

(* ------------------------------------------------------------------ *)
(* Deterministic maximal matching (Cole-Vishkin based)                *)
(* ------------------------------------------------------------------ *)

let test_det_forest_decomposition () =
  let rng = Rng.create 41 in
  let g = Gen.gnp rng ~n:30 ~p:0.3 in
  let forests = Det_matching.forests_of g in
  (* every out-edge goes to a larger id and each edge appears exactly once *)
  let total = ref 0 in
  Array.iteri
    (fun v outs ->
      Array.iter
        (fun u ->
          check_bool "oriented upward" true (u > v);
          check_bool "is an edge" true (Graph.has_edge g v u);
          incr total)
        outs)
    forests;
  check "every edge in exactly one forest slot" (Graph.m g) !total

let test_det_maximal_correct () =
  let rng = Rng.create 42 in
  for _ = 0 to 14 do
    let g = Gen.gnp rng ~n:35 ~p:0.2 in
    let m, _ = Det_matching.maximal g in
    check_bool "valid" true (Matching.is_valid g m);
    check_bool "maximal" true (Matching.is_maximal g m)
  done;
  (* structured instances *)
  List.iter
    (fun g ->
      let m, _ = Det_matching.maximal g in
      check_bool "valid structured" true (Matching.is_valid g m);
      check_bool "maximal structured" true (Matching.is_maximal g m))
    [
      Gen.path 20; Gen.cycle 21; Gen.star 15; Gen.complete 12;
      Gen.grid ~rows:5 ~cols:6; Gen.empty 5; Gen.perfect_matching 10;
    ]

let test_det_is_deterministic () =
  let g = Gen.gnp (Rng.create 43) ~n:40 ~p:0.25 in
  let m1, s1 = Det_matching.maximal g in
  let m2, s2 = Det_matching.maximal g in
  check_bool "identical matchings" true (Matching.edges m1 = Matching.edges m2);
  check "identical rounds" s1.Det_matching.rounds s2.Det_matching.rounds

let test_det_round_structure () =
  (* coloring rounds grow like log* (i.e. are essentially flat in n);
     stage rounds are 6 * #forests *)
  let rounds_for n =
    let g = Gen.cycle n in
    let _, s = Det_matching.maximal g in
    s
  in
  let s1 = rounds_for 50 and s2 = rounds_for 800 in
  check_bool
    (Printf.sprintf "coloring flat-ish: %d vs %d" s1.Det_matching.coloring_rounds
       s2.Det_matching.coloring_rounds)
    true
    (s2.Det_matching.coloring_rounds <= s1.Det_matching.coloring_rounds + 3);
  (* cycles have max out-degree <= 2: stage rounds <= 2 forests * 3 colors * 2 *)
  check_bool "stage rounds bounded by structure" true
    (s2.Det_matching.stage_rounds <= 12)

let qcheck_det_maximal =
  QCheck.Test.make ~name:"deterministic matching is valid and maximal"
    ~count:50
    QCheck.(pair (int_range 2 30) (int_range 0 1000))
    (fun (n, seed) ->
      let g = Gen.gnp (Rng.create seed) ~n ~p:0.3 in
      let m, _ = Det_matching.maximal g in
      Matching.is_valid g m && Matching.is_maximal g m)

(* ------------------------------------------------------------------ *)
(* Theorem 3.3: sublinear message complexity                          *)
(* ------------------------------------------------------------------ *)

let test_message_complexity_vs_baseline () =
  let rng = Rng.create 10 in
  let g = Gen.complete 120 in
  let r = Pipeline_dist.run_maximal_only ~multiplier:1.0 rng g ~beta:1 ~eps:0.5 in
  let _, base_st = Matching_dist.full_graph_baseline rng g in
  check_bool "pipeline matching valid" true (Matching.is_valid g r.Pipeline_dist.matching);
  check_bool
    (Printf.sprintf "messages %d < baseline %d" r.Pipeline_dist.messages
       base_st.Matching_dist.messages)
    true
    (r.Pipeline_dist.messages < base_st.Matching_dist.messages);
  (* baseline must touch Omega(m) edges; the pipeline stays near n * poly *)
  check_bool "baseline is Omega(m)" true
    (base_st.Matching_dist.messages >= Graph.m g);
  check_bool "pipeline sublinear in m" true
    (r.Pipeline_dist.messages < Graph.m g)

let test_full_pipeline_quality () =
  let rng = Rng.create 11 in
  let g = Gen.complete 60 in
  let r = Pipeline_dist.run ~multiplier:1.0 rng g ~beta:1 ~eps:0.5 in
  let opt = Matching.size (Blossom.solve g) in
  let got = Matching.size r.Pipeline_dist.matching in
  (* two sparsifier factors (1+eps)^2 and the matcher factor (1+eps) *)
  check_bool
    (Printf.sprintf "full pipeline: %d vs opt %d" got opt)
    true
    (float_of_int opt <= 1.5 *. 1.5 *. float_of_int got)

(* ------------------------------------------------------------------ *)
(* Property tests                                                     *)
(* ------------------------------------------------------------------ *)

let qcheck_maximal_always =
  QCheck.Test.make ~name:"distributed maximal matching is valid and maximal"
    ~count:40
    QCheck.(pair (int_range 2 35) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Gen.gnp rng ~n ~p:0.3 in
      let m, _ = Matching_dist.maximal rng g in
      Matching.is_valid g m && Matching.is_maximal g m)

let qcheck_walker_never_invalid =
  QCheck.Test.make ~name:"walker algorithm always returns a valid matching"
    ~count:25
    QCheck.(pair (int_range 2 25) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Gen.gnp rng ~n ~p:0.25 in
      let m, _ =
        Matching_dist.one_plus_eps ~attempts_per_phase:6 rng g ~eps:0.5
      in
      Matching.is_valid g m)

let qcheck_walker_improves_or_equals_maximal =
  QCheck.Test.make
    ~name:"walker phase never shrinks the matching below maximal size" ~count:25
    QCheck.(pair (int_range 4 25) (int_range 0 1000))
    (fun (n, seed) ->
      let g = Gen.gnp (Rng.create seed) ~n ~p:0.3 in
      let m_max, _ = Matching_dist.maximal (Rng.create seed) g in
      let m_eps, _ =
        Matching_dist.one_plus_eps ~attempts_per_phase:6 (Rng.create seed) g
          ~eps:0.5
      in
      Matching.size m_eps >= Matching.size m_max)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        qcheck_maximal_always;
        qcheck_walker_never_invalid;
        qcheck_walker_improves_or_equals_maximal;
        qcheck_det_maximal;
      ]
  in
  Alcotest.run "mspar_distsim"
    [
      ( "network",
        [
          Alcotest.test_case "basic rounds" `Quick test_network_basic;
          Alcotest.test_case "non-neighbor rejected" `Quick
            test_network_rejects_non_neighbor;
          Alcotest.test_case "broadcast and bits" `Quick
            test_network_broadcast_and_bits;
          Alcotest.test_case "skip rounds" `Quick test_network_skip_rounds;
        ] );
      ( "sparsify",
        [
          Alcotest.test_case "gdelta single round" `Quick
            test_dist_gdelta_single_round;
          Alcotest.test_case "gdelta quality" `Quick
            test_dist_gdelta_matches_quality;
          Alcotest.test_case "solomon" `Quick test_dist_solomon;
          Alcotest.test_case "composed" `Quick test_dist_composed;
        ] );
      ( "maximal",
        [
          Alcotest.test_case "valid and maximal" `Quick test_dist_maximal;
          Alcotest.test_case "edge cases" `Quick test_dist_maximal_empty_and_tiny;
        ] );
      ( "one-plus-eps",
        [
          Alcotest.test_case "quality" `Quick test_dist_one_plus_eps_quality;
          Alcotest.test_case "paths" `Quick test_dist_one_plus_eps_on_paths;
          Alcotest.test_case "rounds independent of n" `Quick
            test_dist_rounds_independent_of_n;
        ] );
      ( "deterministic",
        [
          Alcotest.test_case "forest decomposition" `Quick
            test_det_forest_decomposition;
          Alcotest.test_case "maximal correct" `Quick test_det_maximal_correct;
          Alcotest.test_case "deterministic" `Quick test_det_is_deterministic;
          Alcotest.test_case "round structure" `Quick test_det_round_structure;
        ] );
      ( "messages",
        [
          Alcotest.test_case "sublinear vs baseline" `Quick
            test_message_complexity_vs_baseline;
          Alcotest.test_case "full pipeline quality" `Quick
            test_full_pipeline_quality;
        ] );
      ("properties", qsuite);
    ]
