(* Tests for mspar_distsim: the synchronous network simulator, the one-round
   distributed sparsifiers, the proposal-based maximal matching, the
   walker-based (1+eps) algorithm, and the message-complexity comparison
   behind Theorem 3.3. *)

open Mspar_prelude
open Mspar_graph
open Mspar_matching
open Mspar_distsim

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Network semantics                                                  *)
(* ------------------------------------------------------------------ *)

let test_network_basic () =
  let g = Gen.path 3 in
  let net = Network.create g in
  check "no rounds yet" 0 (Network.rounds net);
  Network.send net ~src:0 ~dst:1 ();
  Network.send net ~src:2 ~dst:1 ();
  check "messages counted at send" 2 (Network.messages net);
  check_bool "inbox empty before deliver" true (Network.inbox net 1 = []);
  Network.deliver net;
  check "one round" 1 (Network.rounds net);
  let senders = List.map fst (Network.inbox net 1) |> List.sort compare in
  check_bool "both messages arrived" true (senders = [ 0; 2 ]);
  Network.deliver net;
  check_bool "inbox cleared next round" true (Network.inbox net 1 = [])

let test_network_rejects_non_neighbor () =
  let g = Gen.path 3 in
  let net = Network.create g in
  Alcotest.check_raises "non-neighbor send"
    (Invalid_argument "Network.send: dst is not a neighbor of src") (fun () ->
      Network.send net ~src:0 ~dst:2 ())

let test_network_broadcast_and_bits () =
  let g = Gen.star 5 in
  let net = Network.create ~bit_size:(fun words -> 8 * words) g in
  Network.broadcast net ~src:0 3;
  check "four messages" 4 (Network.messages net);
  check "bits" (4 * 24) (Network.bits net);
  check "max message bits" 24 (Network.max_message_bits net);
  check_bool "congest word positive" true (Network.congest_word net >= 2)

let test_network_skip_rounds () =
  let net = Network.create (Gen.path 2) in
  Network.skip_rounds net 5;
  check "skipped" 5 (Network.rounds net)

(* ------------------------------------------------------------------ *)
(* Distributed sparsifiers                                            *)
(* ------------------------------------------------------------------ *)

let test_dist_gdelta_single_round () =
  let rng = Rng.create 1 in
  let g = Gen.complete 40 in
  let s, st = Sparsify_dist.gdelta rng g ~delta:4 in
  check "one round" 1 st.Sparsify_dist.rounds;
  check_bool "subgraph" true (Graph.is_subgraph ~sub:s ~super:g);
  (* message count = marking events <= n * 2delta, sublinear vs 2m *)
  check_bool "messages sublinear" true
    (st.Sparsify_dist.messages <= Graph.n g * 8);
  check_bool "messages below input size" true
    (st.Sparsify_dist.messages < 2 * Graph.m g);
  (* 1-bit messages *)
  check "bits equal messages" st.Sparsify_dist.messages st.Sparsify_dist.bits;
  (* min-degree guarantee as in the sequential construction *)
  for v = 0 to Graph.n g - 1 do
    check_bool "degree floor" true
      (Graph.degree s v >= min (Graph.degree g v) 4)
  done

let test_dist_gdelta_matches_quality () =
  let rng = Rng.create 2 in
  let g = Gen.complete 60 in
  let s, _ = Sparsify_dist.gdelta rng g ~delta:8 in
  let opt = Matching.size (Blossom.solve g) in
  let opt_s = Matching.size (Blossom.solve s) in
  check_bool
    (Printf.sprintf "distributed sparsifier quality %d vs %d" opt_s opt)
    true
    (float_of_int opt <= 1.5 *. float_of_int opt_s)

let test_dist_solomon () =
  let rng = Rng.create 3 in
  let g = Gen.gnp rng ~n:50 ~p:0.3 in
  let s, st = Sparsify_dist.solomon g ~delta_alpha:5 in
  check "one round" 1 st.Sparsify_dist.rounds;
  check_bool "subgraph" true (Graph.is_subgraph ~sub:s ~super:g);
  check_bool "degree bound" true (Graph.max_degree s <= 5);
  (* must agree with the sequential implementation (same arbitrary rule) *)
  let seq = Mspar_core.Solomon.sparsify g ~delta_alpha:5 in
  check_bool "agrees with sequential" true (Graph.equal s seq)

let test_dist_composed () =
  let rng = Rng.create 4 in
  let g = Gen.complete 50 in
  let s, st = Sparsify_dist.composed rng g ~beta:1 ~eps:0.5 ~multiplier:1.0 () in
  check "two rounds" 2 st.Sparsify_dist.rounds;
  check_bool "subgraph" true (Graph.is_subgraph ~sub:s ~super:g)

(* ------------------------------------------------------------------ *)
(* Distributed maximal matching                                       *)
(* ------------------------------------------------------------------ *)

let test_dist_maximal () =
  let rng = Rng.create 5 in
  for _ = 0 to 9 do
    let g = Gen.gnp rng ~n:40 ~p:0.2 in
    let m, st = Matching_dist.maximal rng g in
    check_bool "valid" true (Matching.is_valid g m);
    check_bool "maximal" true (Matching.is_maximal g m);
    check_bool "rounds logarithmic-ish" true (st.Matching_dist.rounds <= 200)
  done

let test_dist_maximal_empty_and_tiny () =
  let rng = Rng.create 6 in
  let m, st = Matching_dist.maximal rng (Gen.empty 5) in
  check "empty graph" 0 (Matching.size m);
  check "no rounds needed" 0 (st.Matching_dist.rounds);
  let m, _ = Matching_dist.maximal rng (Gen.path 2) in
  check "single edge matched" 1 (Matching.size m)

(* ------------------------------------------------------------------ *)
(* Walker-based (1+eps)                                               *)
(* ------------------------------------------------------------------ *)

let test_dist_one_plus_eps_quality () =
  let rng = Rng.create 7 in
  for trial = 0 to 4 do
    let g = Gen.gnp rng ~n:40 ~p:0.15 in
    let m, _ = Matching_dist.one_plus_eps rng g ~eps:0.34 in
    check_bool "valid" true (Matching.is_valid g m);
    check_bool "maximal" true (Matching.is_maximal g m);
    let opt = Matching.size (Blossom.solve g) in
    check_bool
      (Printf.sprintf "quality trial %d: %d vs opt %d" trial (Matching.size m)
         opt)
      true
      (float_of_int opt <= 1.34 *. float_of_int (Matching.size m))
  done

let test_dist_one_plus_eps_on_paths () =
  (* long paths are the classic hard case for local augmentation *)
  let rng = Rng.create 8 in
  let g = Gen.path 30 in
  let m, _ = Matching_dist.one_plus_eps rng g ~eps:0.25 in
  let opt = Matching.size (Blossom.solve g) in
  check_bool
    (Printf.sprintf "path quality %d vs %d" (Matching.size m) opt)
    true
    (float_of_int opt <= 1.25 *. float_of_int (Matching.size m))

let test_dist_rounds_independent_of_n () =
  (* fixed degree and eps: rounds should not grow with n (the log* n term
     is invisible at these scales; we check near-constancy) *)
  let rounds_for n =
    let rng = Rng.create 9 in
    let g = Gen.cycle n in
    let _, st = Matching_dist.one_plus_eps ~attempts_per_phase:8 rng g ~eps:0.5 in
    st.Matching_dist.rounds
  in
  let r1 = rounds_for 50 and r2 = rounds_for 400 in
  check_bool
    (Printf.sprintf "rounds %d (n=50) vs %d (n=400)" r1 r2)
    true
    (float_of_int r2 <= 3.0 *. float_of_int (max r1 1))

(* ------------------------------------------------------------------ *)
(* Deterministic maximal matching (Cole-Vishkin based)                *)
(* ------------------------------------------------------------------ *)

let test_det_forest_decomposition () =
  let rng = Rng.create 41 in
  let g = Gen.gnp rng ~n:30 ~p:0.3 in
  let forests = Det_matching.forests_of g in
  (* every out-edge goes to a larger id and each edge appears exactly once *)
  let total = ref 0 in
  Array.iteri
    (fun v outs ->
      Array.iter
        (fun u ->
          check_bool "oriented upward" true (u > v);
          check_bool "is an edge" true (Graph.has_edge g v u);
          incr total)
        outs)
    forests;
  check "every edge in exactly one forest slot" (Graph.m g) !total

let test_det_maximal_correct () =
  let rng = Rng.create 42 in
  for _ = 0 to 14 do
    let g = Gen.gnp rng ~n:35 ~p:0.2 in
    let m, _ = Det_matching.maximal g in
    check_bool "valid" true (Matching.is_valid g m);
    check_bool "maximal" true (Matching.is_maximal g m)
  done;
  (* structured instances *)
  List.iter
    (fun g ->
      let m, _ = Det_matching.maximal g in
      check_bool "valid structured" true (Matching.is_valid g m);
      check_bool "maximal structured" true (Matching.is_maximal g m))
    [
      Gen.path 20; Gen.cycle 21; Gen.star 15; Gen.complete 12;
      Gen.grid ~rows:5 ~cols:6; Gen.empty 5; Gen.perfect_matching 10;
    ]

let test_det_is_deterministic () =
  let g = Gen.gnp (Rng.create 43) ~n:40 ~p:0.25 in
  let m1, s1 = Det_matching.maximal g in
  let m2, s2 = Det_matching.maximal g in
  check_bool "identical matchings" true (Matching.edges m1 = Matching.edges m2);
  check "identical rounds" s1.Det_matching.rounds s2.Det_matching.rounds

let test_det_round_structure () =
  (* coloring rounds grow like log* (i.e. are essentially flat in n);
     stage rounds are 6 * #forests *)
  let rounds_for n =
    let g = Gen.cycle n in
    let _, s = Det_matching.maximal g in
    s
  in
  let s1 = rounds_for 50 and s2 = rounds_for 800 in
  check_bool
    (Printf.sprintf "coloring flat-ish: %d vs %d" s1.Det_matching.coloring_rounds
       s2.Det_matching.coloring_rounds)
    true
    (s2.Det_matching.coloring_rounds <= s1.Det_matching.coloring_rounds + 3);
  (* cycles have max out-degree <= 2: stage rounds <= 2 forests * 3 colors * 2 *)
  check_bool "stage rounds bounded by structure" true
    (s2.Det_matching.stage_rounds <= 12)

let qcheck_det_maximal =
  QCheck.Test.make ~name:"deterministic matching is valid and maximal"
    ~count:50
    QCheck.(pair (int_range 2 30) (int_range 0 1000))
    (fun (n, seed) ->
      let g = Gen.gnp (Rng.create seed) ~n ~p:0.3 in
      let m, _ = Det_matching.maximal g in
      Matching.is_valid g m && Matching.is_maximal g m)

(* ------------------------------------------------------------------ *)
(* Theorem 3.3: sublinear message complexity                          *)
(* ------------------------------------------------------------------ *)

let test_message_complexity_vs_baseline () =
  let rng = Rng.create 10 in
  let g = Gen.complete 120 in
  let r = Pipeline_dist.run_maximal_only ~multiplier:1.0 rng g ~beta:1 ~eps:0.5 in
  let _, base_st = Matching_dist.full_graph_baseline rng g in
  check_bool "pipeline matching valid" true (Matching.is_valid g r.Pipeline_dist.matching);
  check_bool
    (Printf.sprintf "messages %d < baseline %d" r.Pipeline_dist.messages
       base_st.Matching_dist.messages)
    true
    (r.Pipeline_dist.messages < base_st.Matching_dist.messages);
  (* baseline must touch Omega(m) edges; the pipeline stays near n * poly *)
  check_bool "baseline is Omega(m)" true
    (base_st.Matching_dist.messages >= Graph.m g);
  check_bool "pipeline sublinear in m" true
    (r.Pipeline_dist.messages < Graph.m g)

let test_full_pipeline_quality () =
  let rng = Rng.create 11 in
  let g = Gen.complete 60 in
  let r = Pipeline_dist.run ~multiplier:1.0 rng g ~beta:1 ~eps:0.5 in
  let opt = Matching.size (Blossom.solve g) in
  let got = Matching.size r.Pipeline_dist.matching in
  (* two sparsifier factors (1+eps)^2 and the matcher factor (1+eps) *)
  check_bool
    (Printf.sprintf "full pipeline: %d vs opt %d" got opt)
    true
    (float_of_int opt <= 1.5 *. 1.5 *. float_of_int got)

(* ------------------------------------------------------------------ *)
(* CONGEST word size                                                  *)
(* ------------------------------------------------------------------ *)

let test_ceil_log2_boundaries () =
  (* reference implementation by exhaustive doubling *)
  let naive n =
    if n <= 1 then 0
    else begin
      let k = ref 0 in
      while (1 lsl !k) < n do
        incr k
      done;
      !k
    end
  in
  check "n=0" 0 (Network.ceil_log2 0);
  check "n=1" 0 (Network.ceil_log2 1);
  for k = 1 to 20 do
    let p = 1 lsl k in
    (* exact powers of two and both neighbors: the float-log formulation
       misrounds exactly here *)
    check (Printf.sprintf "2^%d" k) k (Network.ceil_log2 p);
    check (Printf.sprintf "2^%d + 1" k) (k + 1) (Network.ceil_log2 (p + 1));
    check (Printf.sprintf "2^%d - 1" k) (naive (p - 1)) (Network.ceil_log2 (p - 1))
  done;
  (* spot-check against the reference away from boundaries *)
  let rng = Rng.create 99 in
  for _ = 0 to 199 do
    let n = 2 + Rng.int rng (1 lsl 20) in
    check (Printf.sprintf "naive agreement n=%d" n) (naive n)
      (Network.ceil_log2 n)
  done;
  (* congest_word on a real network: word of an n-vertex graph *)
  let net : unit Network.t = Network.create (Gen.path 1024) in
  check "congest word 1024" 10 (Network.congest_word net);
  let net : unit Network.t = Network.create (Gen.path 1025) in
  check "congest word 1025" 11 (Network.congest_word net)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                    *)
(* ------------------------------------------------------------------ *)

let test_faults_plan_validation () =
  let bad name f =
    check_bool name true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  bad "drop < 0" (fun () -> Faults.plan ~drop:(-0.1) (Rng.create 1));
  bad "drop = 1" (fun () -> Faults.plan ~drop:1.0 (Rng.create 1));
  bad "reorder 0" (fun () -> Faults.plan ~reorder:0 (Rng.create 1));
  bad "delay 0" (fun () -> Faults.plan ~straggler:[ (0, 0) ] (Rng.create 1));
  ignore (Faults.plan ~drop:0.5 ~duplicate:0.5 ~reorder:3 (Rng.create 1))

let test_faults_benign_plan_is_transparent () =
  (* a plan with all-default knobs routes through the fault code path but
     must not change the execution *)
  let g = Gen.gnp (Rng.create 41) ~n:50 ~p:0.2 in
  let s0, st0 = Sparsify_dist.gdelta (Rng.create 42) g ~delta:3 in
  let faults = Faults.plan (Rng.create 7) in
  let s1, st1 = Sparsify_dist.gdelta ~faults (Rng.create 42) g ~delta:3 in
  check_bool "same sparsifier" true (Graph.equal s0 s1);
  check "same messages" st0.Sparsify_dist.messages st1.Sparsify_dist.messages;
  check "no drops" 0 st1.Sparsify_dist.faults.Faults.dropped;
  check "no dups" 0 st1.Sparsify_dist.faults.Faults.duplicated

let test_faults_drop_accounting () =
  (* delivered + dropped = sent, and the drop counter actually moves *)
  let faults = Faults.plan ~drop:0.5 (Rng.create 3) in
  let net : unit Network.t = Network.create ~faults (Gen.path 2) in
  let delivered = ref 0 in
  for _ = 1 to 100 do
    Network.send net ~src:0 ~dst:1 ();
    Network.deliver net;
    delivered := !delivered + List.length (Network.inbox net 1)
  done;
  check "all sends metered" 100 (Network.messages net);
  check_bool "some drops" true (Network.dropped net > 0);
  check_bool "not all dropped" true (Network.dropped net < 100);
  check "conservation" 100 (!delivered + Network.dropped net)

let test_faults_duplicate_accounting () =
  let faults = Faults.plan ~duplicate:0.5 (Rng.create 4) in
  let net : unit Network.t = Network.create ~faults (Gen.path 2) in
  let delivered = ref 0 in
  for _ = 1 to 100 do
    Network.send net ~src:0 ~dst:1 ();
    Network.deliver net;
    delivered := !delivered + List.length (Network.inbox net 1)
  done;
  (* duplicates are a link-level artifact: sender pays for one message *)
  check "sends metered once" 100 (Network.messages net);
  check_bool "some duplicates" true (Network.duplicated net > 0);
  check "conservation with dups" (100 + Network.duplicated net) !delivered

let test_faults_straggler_delay () =
  let faults = Faults.plan ~straggler:[ (0, 3) ] (Rng.create 5) in
  let net : int Network.t = Network.create ~faults (Gen.path 2) in
  Network.send net ~src:0 ~dst:1 7;
  (* a non-delayed message would arrive at the first deliver; delay 3
     pushes the arrival three rounds further *)
  for r = 1 to 3 do
    Network.deliver net;
    check_bool (Printf.sprintf "still pending after round %d" r) true
      (Network.inbox net 1 = [])
  done;
  Network.deliver net;
  check_bool "arrived late" true (Network.inbox net 1 = [ (0, 7) ]);
  check "delayed counted" 1 (Network.delayed net);
  (* the reverse direction is unaffected *)
  Network.send net ~src:1 ~dst:0 9;
  Network.deliver net;
  check_bool "non-straggler direction on time" true
    (Network.inbox net 0 = [ (1, 9) ])

let test_faults_crash_semantics () =
  let faults = Faults.plan ~crashed:[ 0 ] (Rng.create 6) in
  let net : unit Network.t = Network.create ~faults (Gen.path 3) in
  check_bool "failure detector" true (Network.is_crashed net 0);
  check_bool "live vertex" false (Network.is_crashed net 1);
  (* sends from a crashed processor are silent no-ops *)
  Network.send net ~src:0 ~dst:1 ();
  check "crashed send not metered" 0 (Network.messages net);
  (* sends to a crashed processor are paid for but never read *)
  Network.send net ~src:1 ~dst:0 ();
  Network.deliver net;
  check "live send metered" 1 (Network.messages net);
  check_bool "crashed inbox empty" true (Network.inbox net 0 = [])

let test_reliable_equals_gdelta_fault_free () =
  let g = Gen.gnp (Rng.create 20) ~n:60 ~p:0.15 in
  let s0, _ = Sparsify_dist.gdelta (Rng.create 21) g ~delta:4 in
  let s1, r = Sparsify_dist.gdelta_reliable (Rng.create 21) g ~delta:4 ~retries:3 in
  check_bool "identical sparsifier" true (Graph.equal s0 s1);
  check "one attempt" 1 r.Sparsify_dist.attempts;
  check "nothing unacked" 0 r.Sparsify_dist.unacked;
  check "mark + ack rounds" 2 r.Sparsify_dist.base.Sparsify_dist.rounds

let test_reliable_recovery_acceptance () =
  (* the acceptance bar from the issue: drop 0.2, retry budget 3, fixed
     G(n,p) seed — the self-healing sparsifier recovers >= 0.99 of the
     fault-free sparsifier's matching size *)
  let g = Gen.gnp (Rng.create 30) ~n:200 ~p:0.1 in
  let free, _ = Sparsify_dist.gdelta (Rng.create 31) g ~delta:4 in
  let faults = Faults.plan ~drop:0.2 (Rng.create 32) in
  let healed, r =
    Sparsify_dist.gdelta_reliable ~faults (Rng.create 31) g ~delta:4 ~retries:3
  in
  let mcm s = Matching.size (Blossom.solve s) in
  let reference = mcm free and got = mcm healed in
  check_bool "faults were injected" true
    (r.Sparsify_dist.base.Sparsify_dist.faults.Faults.dropped > 0);
  check_bool
    (Printf.sprintf "recovery %d vs %d" got reference)
    true
    (float_of_int got >= 0.99 *. float_of_int reference)

let test_reliable_drops_need_retries () =
  (* with no retry budget a heavy drop rate visibly thins the sparsifier;
     the budget buys the edges back *)
  let g = Gen.gnp (Rng.create 50) ~n:100 ~p:0.15 in
  let s_free, _ = Sparsify_dist.gdelta (Rng.create 51) g ~delta:4 in
  let run retries =
    let faults = Faults.plan ~drop:0.4 (Rng.create 52) in
    let s, r =
      Sparsify_dist.gdelta_reliable ~faults (Rng.create 51) g ~delta:4 ~retries
    in
    (Graph.m s, r.Sparsify_dist.unacked)
  in
  let m0, unacked0 = run 0 in
  let m5, unacked5 = run 5 in
  check_bool "retries recover edges" true (m5 > m0);
  check_bool "retries shrink the unacked set" true (unacked5 < unacked0);
  check_bool "near-complete recovery" true (m5 >= Graph.m s_free * 99 / 100)

let test_maximal_with_crashes () =
  let g = Gen.gnp (Rng.create 60) ~n:50 ~p:0.2 in
  let crashed = [ 3; 17; 29 ] in
  let faults = Faults.plan ~crashed (Rng.create 61) in
  let m, _ = Matching_dist.maximal ~faults (Rng.create 62) g in
  check_bool "valid" true (Matching.is_valid g m);
  List.iter
    (fun v -> check_bool "crashed vertex unmatched" false (Matching.is_matched m v))
    crashed;
  (* maximal among survivors: no edge with both endpoints live and free *)
  let live v = not (List.mem v crashed) in
  Graph.iter_edges g (fun u v ->
      if live u && live v then
        check_bool
          (Printf.sprintf "survivor edge %d-%d dominated" u v)
          true
          (Matching.is_matched m u || Matching.is_matched m v))

let test_one_plus_eps_under_drops () =
  (* graceful degradation: with lossy links the matching must stay valid
     (size may degrade, validity may not) *)
  let g = Gen.gnp (Rng.create 70) ~n:40 ~p:0.2 in
  let faults = Faults.plan ~drop:0.3 ~duplicate:0.2 ~reorder:3 (Rng.create 71) in
  let m, st = Matching_dist.one_plus_eps ~faults (Rng.create 72) g ~eps:0.5 in
  check_bool "valid under drops" true (Matching.is_valid g m);
  check_bool "drops occurred" true (st.Matching_dist.faults.Faults.dropped > 0);
  (* the matching still does real work: at least half of a maximal size *)
  let m_free, _ = Matching_dist.maximal (Rng.create 72) g in
  check_bool "not collapsed" true
    (2 * Matching.size m >= Matching.size m_free)

let test_det_maximal_with_crashes () =
  let g = Gen.gnp (Rng.create 80) ~n:40 ~p:0.15 in
  let crashed = [ 1; 20 ] in
  let faults = Faults.plan ~crashed (Rng.create 81) in
  let m, _ = Det_matching.maximal ~faults g in
  check_bool "valid" true (Matching.is_valid g m);
  List.iter
    (fun v -> check_bool "crashed vertex unmatched" false (Matching.is_matched m v))
    crashed

let test_solomon_with_crashes () =
  let g = Gen.complete 30 in
  let faults = Faults.plan ~crashed:[ 0; 1 ] (Rng.create 90) in
  let s, _ = Sparsify_dist.solomon ~faults g ~delta_alpha:4 in
  check_bool "subgraph" true (Graph.is_subgraph ~sub:s ~super:g);
  (* a crashed vertex marks nothing and its marks are read by nobody, so
     no surviving edge touches it *)
  Graph.iter_edges s (fun u v ->
      check_bool
        (Printf.sprintf "edge %d-%d avoids crashed" u v)
        true
        (u > 1 && v > 1))

(* ------------------------------------------------------------------ *)
(* Property tests                                                     *)
(* ------------------------------------------------------------------ *)

let qcheck_matching_valid_under_faults =
  (* whatever the fault plan, the returned matching is a matching *)
  QCheck.Test.make ~name:"matching stays valid under arbitrary fault plans"
    ~count:40
    QCheck.(
      quad (int_range 4 30) (int_range 0 1000)
        (pair (int_range 0 9) (int_range 0 9))
        (int_range 0 3))
    (fun (n, seed, (drop10, dup10), ncrash) ->
      let g = Gen.gnp (Rng.create seed) ~n ~p:0.25 in
      let frng = Rng.create (seed + 1) in
      let crashed =
        if ncrash = 0 then []
        else Rng.sample_distinct frng ~k:(min ncrash n) ~n |> Array.to_list
      in
      let faults =
        Faults.plan
          ~drop:(float_of_int drop10 /. 10.0)
          ~duplicate:(float_of_int dup10 /. 10.0)
          ~reorder:2 ~crashed frng
      in
      let m, _ = Matching_dist.maximal ~faults (Rng.create seed) g in
      Matching.is_valid g m
      && List.for_all (fun v -> not (Matching.is_matched m v)) crashed)

let qcheck_maximal_always =
  QCheck.Test.make ~name:"distributed maximal matching is valid and maximal"
    ~count:40
    QCheck.(pair (int_range 2 35) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Gen.gnp rng ~n ~p:0.3 in
      let m, _ = Matching_dist.maximal rng g in
      Matching.is_valid g m && Matching.is_maximal g m)

let qcheck_walker_never_invalid =
  QCheck.Test.make ~name:"walker algorithm always returns a valid matching"
    ~count:25
    QCheck.(pair (int_range 2 25) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Gen.gnp rng ~n ~p:0.25 in
      let m, _ =
        Matching_dist.one_plus_eps ~attempts_per_phase:6 rng g ~eps:0.5
      in
      Matching.is_valid g m)

let qcheck_walker_improves_or_equals_maximal =
  QCheck.Test.make
    ~name:"walker phase never shrinks the matching below maximal size" ~count:25
    QCheck.(pair (int_range 4 25) (int_range 0 1000))
    (fun (n, seed) ->
      let g = Gen.gnp (Rng.create seed) ~n ~p:0.3 in
      let m_max, _ = Matching_dist.maximal (Rng.create seed) g in
      let m_eps, _ =
        Matching_dist.one_plus_eps ~attempts_per_phase:6 (Rng.create seed) g
          ~eps:0.5
      in
      Matching.size m_eps >= Matching.size m_max)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        qcheck_maximal_always;
        qcheck_walker_never_invalid;
        qcheck_walker_improves_or_equals_maximal;
        qcheck_det_maximal;
        qcheck_matching_valid_under_faults;
      ]
  in
  Alcotest.run "mspar_distsim"
    [
      ( "network",
        [
          Alcotest.test_case "basic rounds" `Quick test_network_basic;
          Alcotest.test_case "non-neighbor rejected" `Quick
            test_network_rejects_non_neighbor;
          Alcotest.test_case "broadcast and bits" `Quick
            test_network_broadcast_and_bits;
          Alcotest.test_case "skip rounds" `Quick test_network_skip_rounds;
          Alcotest.test_case "ceil_log2 boundaries" `Quick
            test_ceil_log2_boundaries;
        ] );
      ( "faults",
        [
          Alcotest.test_case "plan validation" `Quick test_faults_plan_validation;
          Alcotest.test_case "benign plan transparent" `Quick
            test_faults_benign_plan_is_transparent;
          Alcotest.test_case "drop accounting" `Quick test_faults_drop_accounting;
          Alcotest.test_case "duplicate accounting" `Quick
            test_faults_duplicate_accounting;
          Alcotest.test_case "straggler delay" `Quick test_faults_straggler_delay;
          Alcotest.test_case "crash semantics" `Quick test_faults_crash_semantics;
          Alcotest.test_case "reliable = gdelta fault-free" `Quick
            test_reliable_equals_gdelta_fault_free;
          Alcotest.test_case "recovery acceptance" `Quick
            test_reliable_recovery_acceptance;
          Alcotest.test_case "retries buy edges back" `Quick
            test_reliable_drops_need_retries;
          Alcotest.test_case "maximal with crashes" `Quick
            test_maximal_with_crashes;
          Alcotest.test_case "walker under drops" `Quick
            test_one_plus_eps_under_drops;
          Alcotest.test_case "deterministic with crashes" `Quick
            test_det_maximal_with_crashes;
          Alcotest.test_case "solomon with crashes" `Quick
            test_solomon_with_crashes;
        ] );
      ( "sparsify",
        [
          Alcotest.test_case "gdelta single round" `Quick
            test_dist_gdelta_single_round;
          Alcotest.test_case "gdelta quality" `Quick
            test_dist_gdelta_matches_quality;
          Alcotest.test_case "solomon" `Quick test_dist_solomon;
          Alcotest.test_case "composed" `Quick test_dist_composed;
        ] );
      ( "maximal",
        [
          Alcotest.test_case "valid and maximal" `Quick test_dist_maximal;
          Alcotest.test_case "edge cases" `Quick test_dist_maximal_empty_and_tiny;
        ] );
      ( "one-plus-eps",
        [
          Alcotest.test_case "quality" `Quick test_dist_one_plus_eps_quality;
          Alcotest.test_case "paths" `Quick test_dist_one_plus_eps_on_paths;
          Alcotest.test_case "rounds independent of n" `Quick
            test_dist_rounds_independent_of_n;
        ] );
      ( "deterministic",
        [
          Alcotest.test_case "forest decomposition" `Quick
            test_det_forest_decomposition;
          Alcotest.test_case "maximal correct" `Quick test_det_maximal_correct;
          Alcotest.test_case "deterministic" `Quick test_det_is_deterministic;
          Alcotest.test_case "round structure" `Quick test_det_round_structure;
        ] );
      ( "messages",
        [
          Alcotest.test_case "sublinear vs baseline" `Quick
            test_message_complexity_vs_baseline;
          Alcotest.test_case "full pipeline quality" `Quick
            test_full_pipeline_quality;
        ] );
      ("properties", qsuite);
    ]
