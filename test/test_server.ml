(* The serve wire codec: every request/response round-trips through its
   frame body, and the decoders are total — junk bodies, truncations,
   unknown tags, and trailing bytes are [Error]s, never exceptions.
   (The full daemon — sockets, backpressure, crash recovery — is
   exercised end-to-end by the serve-smoke / serve-faults-smoke runtest
   rules in bench/.) *)

open Mspar_server

let check_bool = Alcotest.(check bool)

let encode_req r =
  let buf = Buffer.create 32 in
  Wire.encode_request buf r;
  Buffer.contents buf

let encode_resp r =
  let buf = Buffer.create 32 in
  Wire.encode_response buf r;
  Buffer.contents buf

let sample_requests =
  [
    Wire.Hello 0;
    Wire.Hello 123456;
    Wire.Insert { rid = 1; u = 0; v = 1 };
    Wire.Insert { rid = max_int; u = 17; v = 300 };
    Wire.Delete { rid = 2; u = 5; v = 9 };
    Wire.Query_matched 0;
    Wire.Query_matched 4093;
    Wire.Query_edge (3, 7);
    Wire.Query_sparsifier (0, 0);
    Wire.Checksum;
    Wire.Snapshot;
    Wire.Drain;
    Wire.Stats;
    Wire.Ping;
    Wire.Repl_hello { epoch = 0; offset = 0 };
    Wire.Repl_hello { epoch = 3; offset = 1_234_567 };
    Wire.Repl_ack { offset = 42 };
    Wire.Promote;
    Wire.Role;
  ]

let sample_responses =
  [
    Wire.Ack true;
    Wire.Ack false;
    Wire.Bool true;
    Wire.Bool false;
    Wire.Digest
      {
        Wire.op_count = 42;
        graph = 0x0123_4567_89ab_cdefL;
        sparsifier = -1L;
        matching = 7;
      };
    Wire.Busy 25;
    Wire.Draining;
    Wire.Ok;
    Wire.Stats_reply
      {
        Wire.accepted = 1;
        active = 2;
        frames_in = 3;
        frames_out = 4;
        malformed = 5;
        busy_rejections = 6;
        ops_applied = 7;
        dedup_hits = 8;
        queries = 9;
        oracle_hits = 10;
        oracle_misses = 11;
        repl_followers = 12;
        repl_lag = 13;
        repl_fenced = 14;
      };
    Wire.Error "";
    Wire.Error "updates require Hello first";
    Wire.Repl_snapshot
      {
        epoch = 2;
        op_epoch = 17;
        wal_offset = 4096;
        meta = "config-bytes";
        last = false;
        chunk = "snapshot-chunk-bytes";
      };
    Wire.Repl_snapshot
      {
        epoch = 0;
        op_epoch = 0;
        wal_offset = 0;
        meta = "";
        last = true;
        chunk = "";
      };
    Wire.Repl_frames { epoch = 2; start_offset = 4096; payload = "\x00\xff raw frame bytes" };
    Wire.Repl_frames { epoch = 1; start_offset = 0; payload = "" };
    Wire.Repl_fence { epoch = 9 };
    Wire.Redirect "";
    Wire.Redirect "tcp:127.0.0.1:7070";
    Wire.Role_reply { primary = true; epoch = 4; offset = 65536 };
    Wire.Role_reply { primary = false; epoch = 0; offset = 0 };
  ]

let test_request_roundtrip () =
  List.iter
    (fun r ->
      match Wire.decode_request (encode_req r) with
      | Ok r' -> check_bool "request round-trips" true (r = r')
      | Error e -> Alcotest.failf "decode_request: %s" e)
    sample_requests

let test_response_roundtrip () =
  List.iter
    (fun r ->
      match Wire.decode_response (encode_resp r) with
      | Ok r' -> check_bool "response round-trips" true (r = r')
      | Error e -> Alcotest.failf "decode_response: %s" e)
    sample_responses

let expect_error what = function
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: hostile body must not decode" what

let test_hostile_bodies () =
  (* empty body *)
  expect_error "empty req" (Wire.decode_request "");
  expect_error "empty resp" (Wire.decode_response "");
  (* unknown tags *)
  expect_error "tag 0" (Wire.decode_request "\x00");
  expect_error "tag 200" (Wire.decode_request "\xc8");
  expect_error "resp tag 99" (Wire.decode_response "\x63");
  (* truncated payloads *)
  expect_error "Hello w/o id" (Wire.decode_request "\x01");
  expect_error "Insert w/ 2 of 3 fields" (Wire.decode_request "\x02\x01\x02");
  expect_error "Digest cut mid-int64"
    (Wire.decode_response (String.sub (encode_resp (Wire.Digest
       { Wire.op_count = 1; graph = 99L; sparsifier = 3L; matching = 0 })) 0 6));
  (* trailing bytes after a valid message are a protocol violation *)
  expect_error "trailing junk on Ping"
    (Wire.decode_request (encode_req Wire.Ping ^ "\x00"));
  expect_error "trailing junk on Ok"
    (Wire.decode_response (encode_resp Wire.Ok ^ "zz"));
  (* a bool byte that is neither 0 nor 1 *)
  expect_error "bad bool" (Wire.decode_response "\x01\x07")

(* totality under arbitrary bytes: decode never raises, whatever arrives *)
let qcheck_decoders_total =
  QCheck.Test.make ~name:"wire decoders are total on arbitrary bodies"
    ~count:1000
    QCheck.(string_of_size (Gen.int_range 0 24))
    (fun body ->
      (match Wire.decode_request body with Ok _ | Error _ -> ());
      (match Wire.decode_response body with Ok _ | Error _ -> ());
      true)

(* round-trip property over generated requests *)
let qcheck_request_roundtrip =
  let gen =
    QCheck.Gen.(
      oneof
        [
          map (fun c -> Wire.Hello c) (int_range 0 1_000_000);
          map3
            (fun rid u v -> Wire.Insert { rid; u; v })
            (int_range 0 1_000_000) (int_range 0 10_000) (int_range 0 10_000);
          map3
            (fun rid u v -> Wire.Delete { rid; u; v })
            (int_range 0 1_000_000) (int_range 0 10_000) (int_range 0 10_000);
          map (fun v -> Wire.Query_matched v) (int_range 0 10_000);
          map2 (fun u v -> Wire.Query_edge (u, v)) (int_range 0 10_000)
            (int_range 0 10_000);
          map2
            (fun u v -> Wire.Query_sparsifier (u, v))
            (int_range 0 10_000) (int_range 0 10_000);
          return Wire.Checksum;
          return Wire.Snapshot;
          return Wire.Drain;
          return Wire.Stats;
          return Wire.Ping;
          map2
            (fun epoch offset -> Wire.Repl_hello { epoch; offset })
            (int_range 0 100) (int_range 0 1_000_000);
          map (fun offset -> Wire.Repl_ack { offset }) (int_range 0 1_000_000);
          return Wire.Promote;
          return Wire.Role;
        ])
  in
  QCheck.Test.make ~name:"generated requests round-trip" ~count:500
    (QCheck.make gen)
    (fun r ->
      match Wire.decode_request (encode_req r) with
      | Ok r' -> r = r'
      | Error _ -> false)

(* round-trip property over generated replication responses: the codec
   must survive arbitrary binary snapshot/frame payloads (lengths are
   explicit on the wire, nothing is delimiter-based) *)
let qcheck_repl_response_roundtrip =
  let gen =
    QCheck.Gen.(
      oneof
        [
          (let* epoch = int_range 0 50 in
           let* op_epoch = int_range 0 100_000 in
           let* wal_offset = int_range 0 10_000_000 in
           let* meta = string_size (int_range 0 40) in
           let* last = bool in
           let* chunk = string_size (int_range 0 200) in
           return
             (Wire.Repl_snapshot { epoch; op_epoch; wal_offset; meta; last; chunk }));
          (let* epoch = int_range 0 50 in
           let* start_offset = int_range 0 10_000_000 in
           let* payload = string_size (int_range 0 200) in
           return (Wire.Repl_frames { epoch; start_offset; payload }));
          map (fun epoch -> Wire.Repl_fence { epoch }) (int_range 0 50);
          map (fun s -> Wire.Redirect s) (string_size (int_range 0 60));
          (let* primary = bool in
           let* epoch = int_range 0 50 in
           let* offset = int_range 0 10_000_000 in
           return (Wire.Role_reply { primary; epoch; offset }));
        ])
  in
  QCheck.Test.make ~name:"generated replication responses round-trip"
    ~count:500 (QCheck.make gen)
    (fun r ->
      match Wire.decode_response (encode_resp r) with
      | Ok r' -> r = r'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* addr_of_string: the --replica-of / Redirect-hint parser             *)
(* ------------------------------------------------------------------ *)

let test_addr_of_string () =
  let ok s expected =
    match Wire.addr_of_string s with
    | Ok a -> check_bool s true (a = expected)
    | Error e -> Alcotest.failf "addr_of_string %S: %s" s e
  in
  let err s =
    match Wire.addr_of_string s with
    | Ok _ -> Alcotest.failf "addr_of_string %S: must be an Error" s
    | Error _ -> ()
  in
  ok "unix:/tmp/mspar.sock" (Wire.Unix_path "/tmp/mspar.sock");
  ok "tcp:127.0.0.1:7070" (Wire.Tcp ("127.0.0.1", 7070));
  ok "127.0.0.1:7070" (Wire.Tcp ("127.0.0.1", 7070));
  ok "localhost:1" (Wire.Tcp ("localhost", 1));
  ok "/var/run/mspar.sock" (Wire.Unix_path "/var/run/mspar.sock");
  err "";
  err "host:0";
  err "host:65536";
  err "host:notaport";
  err "tcp:nocolon"

(* ------------------------------------------------------------------ *)
(* Client backoff: capped full jitter, deterministic under a seed      *)
(* ------------------------------------------------------------------ *)

let test_backoff_schedule () =
  let schedule seed =
    let rng = Mspar_prelude.Rng.create seed in
    List.init 12 (fun attempt ->
        Client.backoff_delay rng ~attempt ~base:0.02 ~cap:1.0)
  in
  (* deterministic: the same seed reproduces the same schedule *)
  let a = schedule 0x5eed and b = schedule 0x5eed in
  check_bool "same seed, same schedule" true (a = b);
  (* a different seed jitters differently (full jitter, not fixed steps) *)
  check_bool "different seed, different schedule" true (a <> schedule 99);
  (* every delay is within [0, min cap (base * 2^attempt)) *)
  List.iteri
    (fun attempt d ->
      let ceiling = Float.min 1.0 (0.02 *. (2. ** float_of_int attempt)) in
      check_bool "delay non-negative" true (d >= 0.);
      check_bool "delay under doubling ceiling" true (d <= ceiling);
      check_bool "delay capped" true (d <= 1.0))
    a;
  (* late attempts saturate at the cap, never overflow past it *)
  let rng = Mspar_prelude.Rng.create 7 in
  for attempt = 20 to 60 do
    let d = Client.backoff_delay rng ~attempt ~base:0.02 ~cap:0.5 in
    check_bool "saturated attempts stay capped" true (d >= 0. && d <= 0.5)
  done

(* ------------------------------------------------------------------ *)
(* Dispatch: read-your-writes through the point-query oracle           *)
(* ------------------------------------------------------------------ *)

(* The contract under test: once a client holds the Ack for an update,
   every subsequent point query answers as if the oracle were built
   fresh on the post-update graph — the dispatcher must invalidate its
   memo before the ack, or cached pre-update answers leak. *)

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter
        (fun e -> remove_tree (Filename.concat path e))
        (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mspar-dispatch-%d" (Unix.getpid ()))
  in
  remove_tree dir;
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

let bool_answer = function
  | Wire.Bool b -> b
  | Wire.Error msg -> Alcotest.failf "query answered Error %S" msg
  | _ -> Alcotest.fail "query answered a non-Bool response"

let test_dispatch_read_your_writes () =
  with_dir (fun dir ->
      let config =
        {
          Mspar_dynamic.Durable.n = 24;
          delta = 3;
          beta = 4;
          eps = 0.4;
          multiplier = 2.0;
          seed = 7;
        }
      in
      let durable = Mspar_dynamic.Durable.create ~sync_every:1 ~dir config in
      Fun.protect
        ~finally:(fun () -> Mspar_dynamic.Durable.close durable)
        (fun () ->
          let metrics = Metrics.create () in
          let t = Dispatch.create ~metrics durable in
          let client = Some 1 in
          let rid = ref 0 in
          let apply req_of =
            incr rid;
            match Dispatch.handle t ~client (req_of ~rid:!rid) with
            | Wire.Ack _ -> Dispatch.sync_if_dirty t
            | Wire.Error msg -> Alcotest.failf "update answered Error %S" msg
            | _ -> Alcotest.fail "update answered a non-Ack response"
          in
          (* a freshly built dispatcher over the same durable state has a
             cold oracle: its answers are by construction un-stale *)
          let check_against_fresh () =
            let fresh = Dispatch.create ~metrics:(Metrics.create ()) durable in
            for u = 0 to 11 do
              let q = Wire.Query_matched u in
              if
                bool_answer (Dispatch.handle t ~client q)
                <> bool_answer (Dispatch.handle fresh ~client q)
              then Alcotest.failf "stale Query_matched at %d" u;
              for v = u + 1 to 11 do
                let q = Wire.Query_sparsifier (u, v) in
                if
                  bool_answer (Dispatch.handle t ~client q)
                  <> bool_answer (Dispatch.handle fresh ~client q)
                then Alcotest.failf "stale Query_sparsifier at (%d,%d)" u v
              done
            done
          in
          let rng = Mspar_prelude.Rng.create 41 in
          for step = 1 to 60 do
            let u = Mspar_prelude.Rng.int rng 12
            and v = Mspar_prelude.Rng.int rng 12 in
            if u <> v then
              if Mspar_prelude.Rng.bool rng then
                apply (fun ~rid -> Wire.Insert { rid; u; v })
              else apply (fun ~rid -> Wire.Delete { rid; u; v });
            (* warm the memo between updates so staleness would show *)
            ignore (Dispatch.handle t ~client (Wire.Query_sparsifier (u, v)));
            ignore (Dispatch.handle t ~client (Wire.Query_matched u));
            if step mod 12 = 0 then check_against_fresh ()
          done;
          check_against_fresh ();
          (* the query path really went through the oracle, and the
             counters surfaced in the wire summary *)
          let s = Metrics.summary metrics in
          check_bool "oracle misses counted" true (s.Wire.oracle_misses > 0);
          check_bool "oracle hits counted" true (s.Wire.oracle_hits > 0)))

let () =
  Alcotest.run "mspar_server"
    [
      ( "wire",
        [
          Alcotest.test_case "request round-trips" `Quick
            test_request_roundtrip;
          Alcotest.test_case "response round-trips" `Quick
            test_response_roundtrip;
          Alcotest.test_case "hostile bodies" `Quick test_hostile_bodies;
          Alcotest.test_case "addr_of_string" `Quick test_addr_of_string;
        ] );
      ( "client",
        [ Alcotest.test_case "backoff schedule" `Quick test_backoff_schedule ] );
      ( "dispatch",
        [
          Alcotest.test_case "read your writes" `Quick
            test_dispatch_read_your_writes;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_decoders_total;
            qcheck_request_roundtrip;
            qcheck_repl_response_roundtrip;
          ] );
    ]
