(* The serve wire codec: every request/response round-trips through its
   frame body, and the decoders are total — junk bodies, truncations,
   unknown tags, and trailing bytes are [Error]s, never exceptions.
   (The full daemon — sockets, backpressure, crash recovery — is
   exercised end-to-end by the serve-smoke / serve-faults-smoke runtest
   rules in bench/.) *)

open Mspar_server

let check_bool = Alcotest.(check bool)

let encode_req r =
  let buf = Buffer.create 32 in
  Wire.encode_request buf r;
  Buffer.contents buf

let encode_resp r =
  let buf = Buffer.create 32 in
  Wire.encode_response buf r;
  Buffer.contents buf

let sample_requests =
  [
    Wire.Hello 0;
    Wire.Hello 123456;
    Wire.Insert { rid = 1; u = 0; v = 1 };
    Wire.Insert { rid = max_int; u = 17; v = 300 };
    Wire.Delete { rid = 2; u = 5; v = 9 };
    Wire.Query_matched 0;
    Wire.Query_matched 4093;
    Wire.Query_edge (3, 7);
    Wire.Query_sparsifier (0, 0);
    Wire.Checksum;
    Wire.Snapshot;
    Wire.Drain;
    Wire.Stats;
    Wire.Ping;
  ]

let sample_responses =
  [
    Wire.Ack true;
    Wire.Ack false;
    Wire.Bool true;
    Wire.Bool false;
    Wire.Digest
      {
        Wire.op_count = 42;
        graph = 0x0123_4567_89ab_cdefL;
        sparsifier = -1L;
        matching = 7;
      };
    Wire.Busy 25;
    Wire.Draining;
    Wire.Ok;
    Wire.Stats_reply
      {
        Wire.accepted = 1;
        active = 2;
        frames_in = 3;
        frames_out = 4;
        malformed = 5;
        busy_rejections = 6;
        ops_applied = 7;
        dedup_hits = 8;
        queries = 9;
      };
    Wire.Error "";
    Wire.Error "updates require Hello first";
  ]

let test_request_roundtrip () =
  List.iter
    (fun r ->
      match Wire.decode_request (encode_req r) with
      | Ok r' -> check_bool "request round-trips" true (r = r')
      | Error e -> Alcotest.failf "decode_request: %s" e)
    sample_requests

let test_response_roundtrip () =
  List.iter
    (fun r ->
      match Wire.decode_response (encode_resp r) with
      | Ok r' -> check_bool "response round-trips" true (r = r')
      | Error e -> Alcotest.failf "decode_response: %s" e)
    sample_responses

let expect_error what = function
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: hostile body must not decode" what

let test_hostile_bodies () =
  (* empty body *)
  expect_error "empty req" (Wire.decode_request "");
  expect_error "empty resp" (Wire.decode_response "");
  (* unknown tags *)
  expect_error "tag 0" (Wire.decode_request "\x00");
  expect_error "tag 200" (Wire.decode_request "\xc8");
  expect_error "resp tag 99" (Wire.decode_response "\x63");
  (* truncated payloads *)
  expect_error "Hello w/o id" (Wire.decode_request "\x01");
  expect_error "Insert w/ 2 of 3 fields" (Wire.decode_request "\x02\x01\x02");
  expect_error "Digest cut mid-int64"
    (Wire.decode_response (String.sub (encode_resp (Wire.Digest
       { Wire.op_count = 1; graph = 99L; sparsifier = 3L; matching = 0 })) 0 6));
  (* trailing bytes after a valid message are a protocol violation *)
  expect_error "trailing junk on Ping"
    (Wire.decode_request (encode_req Wire.Ping ^ "\x00"));
  expect_error "trailing junk on Ok"
    (Wire.decode_response (encode_resp Wire.Ok ^ "zz"));
  (* a bool byte that is neither 0 nor 1 *)
  expect_error "bad bool" (Wire.decode_response "\x01\x07")

(* totality under arbitrary bytes: decode never raises, whatever arrives *)
let qcheck_decoders_total =
  QCheck.Test.make ~name:"wire decoders are total on arbitrary bodies"
    ~count:1000
    QCheck.(string_of_size (Gen.int_range 0 24))
    (fun body ->
      (match Wire.decode_request body with Ok _ | Error _ -> ());
      (match Wire.decode_response body with Ok _ | Error _ -> ());
      true)

(* round-trip property over generated requests *)
let qcheck_request_roundtrip =
  let gen =
    QCheck.Gen.(
      oneof
        [
          map (fun c -> Wire.Hello c) (int_range 0 1_000_000);
          map3
            (fun rid u v -> Wire.Insert { rid; u; v })
            (int_range 0 1_000_000) (int_range 0 10_000) (int_range 0 10_000);
          map3
            (fun rid u v -> Wire.Delete { rid; u; v })
            (int_range 0 1_000_000) (int_range 0 10_000) (int_range 0 10_000);
          map (fun v -> Wire.Query_matched v) (int_range 0 10_000);
          map2 (fun u v -> Wire.Query_edge (u, v)) (int_range 0 10_000)
            (int_range 0 10_000);
          map2
            (fun u v -> Wire.Query_sparsifier (u, v))
            (int_range 0 10_000) (int_range 0 10_000);
          return Wire.Checksum;
          return Wire.Snapshot;
          return Wire.Drain;
          return Wire.Stats;
          return Wire.Ping;
        ])
  in
  QCheck.Test.make ~name:"generated requests round-trip" ~count:500
    (QCheck.make gen)
    (fun r ->
      match Wire.decode_request (encode_req r) with
      | Ok r' -> r = r'
      | Error _ -> false)

let () =
  Alcotest.run "mspar_server"
    [
      ( "wire",
        [
          Alcotest.test_case "request round-trips" `Quick
            test_request_roundtrip;
          Alcotest.test_case "response round-trips" `Quick
            test_response_roundtrip;
          Alcotest.test_case "hostile bodies" `Quick test_hostile_bodies;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_decoders_total; qcheck_request_roundtrip ] );
    ]
