(* Tests for mspar_parallel: the multicore G_delta construction must be a
   pure function of (seed, graph, delta) — identical output for any domain
   count, identical to the sequential reference. *)

open Mspar_prelude
open Mspar_graph
open Mspar_parallel

let check_bool = Alcotest.(check bool)

let test_vertex_rng_independent () =
  (* different vertices get different streams; same vertex, same stream *)
  let a = Par_gdelta.vertex_rng ~seed:1 0 in
  let b = Par_gdelta.vertex_rng ~seed:1 0 in
  check_bool "same vertex same stream" true (Rng.bits64 a = Rng.bits64 b);
  let c = Par_gdelta.vertex_rng ~seed:1 1 in
  let d = Par_gdelta.vertex_rng ~seed:2 0 in
  let a = Par_gdelta.vertex_rng ~seed:1 0 in
  check_bool "different vertex differs" false (Rng.bits64 a = Rng.bits64 c);
  let a = Par_gdelta.vertex_rng ~seed:1 0 in
  check_bool "different seed differs" false (Rng.bits64 a = Rng.bits64 d)

let test_parallel_equals_sequential () =
  let rng = Rng.create 5 in
  List.iter
    (fun (g, delta) ->
      let reference = Par_gdelta.sequential ~seed:99 g ~delta in
      List.iter
        (fun nd ->
          let s = Par_gdelta.sparsify ~num_domains:nd ~seed:99 g ~delta in
          check_bool
            (Printf.sprintf "domains=%d equals sequential" nd)
            true (Graph.equal s reference))
        [ 1; 2; 3; 4; 7 ])
    [
      (Gen.complete 60, 4);
      (Gen.gnp rng ~n:80 ~p:0.3, 3);
      (fst (Unit_disk.random rng ~n:100 ~radius:0.3), 6);
      (Gen.empty 10, 2);
      (Gen.path 9, 2);
    ]

let test_parallel_structure () =
  let g = Gen.complete 70 in
  let delta = 5 in
  let s = Par_gdelta.sparsify ~num_domains:4 ~seed:3 g ~delta in
  check_bool "subgraph" true (Graph.is_subgraph ~sub:s ~super:g);
  for v = 0 to Graph.n g - 1 do
    check_bool "degree floor" true
      (Graph.degree s v >= min (Graph.degree g v) delta)
  done;
  check_bool "naive size bound" true (Graph.m s <= Graph.n g * 2 * delta)

let test_parallel_quality () =
  let g = Gen.complete 80 in
  let s = Par_gdelta.sparsify ~num_domains:4 ~seed:7 g ~delta:8 in
  let os = Mspar_matching.Matching.size (Mspar_matching.Blossom.solve s) in
  check_bool
    (Printf.sprintf "quality %d vs 40" os)
    true
    (float_of_int 40 <= 1.5 *. float_of_int os)

let test_parallel_probe_exactness () =
  (* the probe counter is atomic, so concurrent domains must account every
     read — the parallel total equals the closed-form per-vertex cost, not
     a racy under-count *)
  let check_int = Alcotest.(check int) in
  let rng = Rng.create 77 in
  let g = Gen.gnp rng ~n:300 ~p:0.2 in
  let delta = 4 in
  let expected = ref 0 in
  for v = 0 to Graph.n g - 1 do
    let d = Graph.degree g v in
    expected := !expected + (if d <= 2 * delta then d else delta)
  done;
  Graph.reset_probes g;
  ignore (Par_gdelta.sequential ~seed:5 g ~delta);
  check_int "sequential probes" !expected (Graph.probes g);
  List.iter
    (fun nd ->
      Graph.reset_probes g;
      ignore (Par_gdelta.sparsify ~num_domains:nd ~seed:5 g ~delta);
      check_int
        (Printf.sprintf "domains=%d probes exact" nd)
        !expected (Graph.probes g))
    [ 2; 3; 4; 8 ]

let test_explicit_pool_equals_sequential () =
  (* sparsify on a caller-supplied pool: the pool size sets the default
     chunking, and the result must not depend on either *)
  let rng = Rng.create 21 in
  let zoo =
    [
      (Gen.complete 60, 4);
      (Gen.gnp rng ~n:80 ~p:0.3, 3);
      (Gen.empty 10, 2);
      (Gen.path 2, 1);
      (Gen.complete 3, 1);
    ]
  in
  List.iter
    (fun nd ->
      let pool = Pool.create ~num_domains:nd () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          List.iter
            (fun (g, delta) ->
              let reference = Par_gdelta.sequential ~seed:42 g ~delta in
              let s = Par_gdelta.sparsify ~pool ~seed:42 g ~delta in
              check_bool
                (Printf.sprintf "pool=%d n=%d equals sequential" nd (Graph.n g))
                true
                (Graph.equal s reference);
              (* more chunks than vertices: some ranges are empty *)
              let s7 = Par_gdelta.sparsify ~pool ~num_domains:7 ~seed:42 g ~delta in
              check_bool
                (Printf.sprintf "pool=%d chunks=7 n=%d equals sequential" nd (Graph.n g))
                true
                (Graph.equal s7 reference))
            zoo))
    [ 1; 2; 4 ]

let test_pool_probe_exactness () =
  (* probe exactness must survive real worker domains, not just the
     caller-inline path *)
  let check_int = Alcotest.(check int) in
  let rng = Rng.create 78 in
  let g = Gen.gnp rng ~n:250 ~p:0.25 in
  let delta = 3 in
  let expected = ref 0 in
  for v = 0 to Graph.n g - 1 do
    let d = Graph.degree g v in
    expected := !expected + (if d <= 2 * delta then d else delta)
  done;
  List.iter
    (fun nd ->
      let pool = Pool.create ~num_domains:nd () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          for trial = 1 to 3 do
            Graph.reset_probes g;
            ignore (Par_gdelta.sparsify ~pool ~seed:5 g ~delta);
            check_int
              (Printf.sprintf "pool=%d trial=%d probes exact" nd trial)
              !expected (Graph.probes g)
          done))
    [ 2; 4 ]

let test_collect_range_list_order () =
  (* regression: the boxed collector must emit marks in vertex-ascending,
     adjacency order — it used to return them reversed.  On a graph whose
     degrees are all <= 2Δ the marks are exactly the adjacency lists. *)
  let g = Graph.of_edges ~n:5 [ (0, 1); (0, 3); (1, 2); (2, 4); (3, 4) ] in
  let delta = 3 in
  let expected = ref [] in
  for v = Graph.n g - 1 downto 0 do
    let row = Graph.fold_neighbors g v ~init:[] ~f:(fun acc u -> u :: acc) in
    expected := List.map (fun u -> (v, u)) (List.rev row) @ !expected
  done;
  let got = Par_gdelta.collect_range_list g ~seed:0 ~delta 0 (Graph.n g) in
  check_bool "emission order is vertex-ascending adjacency order" true
    (got = !expected);
  (* a sub-range emits exactly that range's marks, in place *)
  let mid = Par_gdelta.collect_range_list g ~seed:0 ~delta 1 3 in
  check_bool "sub-range order" true
    (mid = List.filter (fun (v, _) -> v = 1 || v = 2) !expected)

let test_pipeline_pool_path () =
  (* the core pipeline's ~pool fast path: same probe accounting contract as
     the sequential path, valid matching, deterministic in the rng state *)
  let module Pipeline = Mspar_core.Pipeline in
  let rng = Rng.create 31 in
  let g = Gen.gnp rng ~n:200 ~p:0.3 in
  let pool = Pool.create ~num_domains:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let r1 = Pipeline.run ~pool (Rng.create 9) g ~beta:4 ~eps:0.5 in
      let r2 = Pipeline.run ~pool (Rng.create 9) g ~beta:4 ~eps:0.5 in
      check_bool "deterministic in rng state" true
        (Mspar_matching.Matching.size r1.Pipeline.matching
        = Mspar_matching.Matching.size r2.Pipeline.matching
        && r1.Pipeline.probes_on_input = r2.Pipeline.probes_on_input);
      check_bool "matching is over the input graph" true
        (Mspar_matching.Matching.is_valid g r1.Pipeline.matching);
      (* probes match the closed form for the §3.1 rule at the chosen Δ *)
      let delta = r1.Pipeline.delta in
      let expected = ref 0 in
      for v = 0 to Graph.n g - 1 do
        let d = Graph.degree g v in
        expected := !expected + (if d <= 2 * delta then d else delta)
      done;
      Alcotest.(check int) "pooled probe accounting" !expected
        r1.Pipeline.probes_on_input;
      (* an explicit non-default rule must fall back, not crash *)
      let r3 =
        Pipeline.run ~pool ~rule:Mspar_core.Gdelta.Mark_all_at_most_two_delta
          (Rng.create 9) g ~beta:4 ~eps:0.5
      in
      check_bool "explicit default rule stays pooled" true
        (r3.Pipeline.probes_on_input = r1.Pipeline.probes_on_input))

let test_pool_survives_raising_job () =
  (* robustness regression: a job that raises must not poison the pool.
     This runs on the process-wide default pool on purpose — the same one
     the core pipeline uses and the one joined by at_exit, so this test
     binary also proves the at_exit join cannot deadlock after a failed
     job (a hang here fails the suite with a timeout, not silently). *)
  let exception Boom in
  let pool = Pool.get_default () in
  let attempt () =
    match
      Pool.parallel_for_ranges pool ~chunks:8 ~n:64 (fun ~chunk ~lo:_ ~hi:_ ->
          if chunk = 3 then raise Boom)
    with
    | () -> Alcotest.fail "raising job did not propagate"
    | exception Boom -> ()
  in
  attempt ();
  attempt ();
  (* the pool still runs real work, on every worker, with full coverage *)
  let g = Gen.gnp (Rng.create 13) ~n:120 ~p:0.3 in
  let reference = Par_gdelta.sequential ~seed:77 g ~delta:3 in
  let s = Par_gdelta.sparsify ~pool ~seed:77 g ~delta:3 in
  check_bool "default pool usable after raising job" true
    (Graph.equal s reference);
  let hits = Array.make 40 0 in
  Pool.parallel_for_ranges pool ~chunks:5 ~n:40 (fun ~chunk:_ ~lo ~hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  check_bool "every index covered exactly once" true
    (Array.for_all (fun c -> c = 1) hits)

let test_pipeline_fallback_counted () =
  (* the ?pool fallback is not silent: the result says which path ran and
     the process-wide meter ticks on every fallback *)
  let module Pipeline = Mspar_core.Pipeline in
  let g = Gen.gnp (Rng.create 41) ~n:80 ~p:0.3 in
  let pool = Pool.create ~num_domains:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let before = Pipeline.pool_fallbacks () in
      let pooled = Pipeline.run ~pool (Rng.create 4) g ~beta:4 ~eps:0.5 in
      check_bool "default rule stays pooled" true
        (pooled.Pipeline.construction = Pipeline.Pooled);
      Alcotest.(check int)
        "no fallback counted" before
        (Pipeline.pool_fallbacks ());
      let fell =
        Pipeline.run ~pool ~rule:Mspar_core.Gdelta.Mark_all_at_most_delta
          (Rng.create 4) g ~beta:4 ~eps:0.5
      in
      check_bool "non-default rule falls back" true
        (fell.Pipeline.construction = Pipeline.Sequential_fallback);
      Alcotest.(check int)
        "fallback counted" (before + 1)
        (Pipeline.pool_fallbacks ());
      let plain = Pipeline.run (Rng.create 4) g ~beta:4 ~eps:0.5 in
      check_bool "no pool = plain sequential, not a fallback" true
        (plain.Pipeline.construction = Pipeline.Sequential);
      Alcotest.(check int)
        "plain sequential not counted" (before + 1)
        (Pipeline.pool_fallbacks ()))

let test_time_comparison_runs () =
  let g = Gen.complete 120 in
  let times = Par_gdelta.time_comparison ~seed:1 g ~delta:4 ~domains:[ 1; 2 ] in
  check_bool "two measurements" true (List.length times = 2);
  List.iter (fun (_, ms) -> check_bool "non-negative" true (ms >= 0.0)) times

let qcheck_parallel_pure =
  QCheck.Test.make
    ~name:"parallel output is a pure function of (seed, graph, delta)"
    ~count:30
    QCheck.(
      quad (int_range 2 40) (int_range 1 6) (int_range 0 1000) (int_range 1 5))
    (fun (n, delta, seed, domains) ->
      let g = Gen.gnp (Rng.create seed) ~n ~p:0.35 in
      let a = Par_gdelta.sparsify ~num_domains:domains ~seed g ~delta in
      let b = Par_gdelta.sequential ~seed g ~delta in
      Graph.equal a b)

let () =
  Alcotest.run "mspar_parallel"
    [
      ( "par-gdelta",
        [
          Alcotest.test_case "vertex rng" `Quick test_vertex_rng_independent;
          Alcotest.test_case "parallel = sequential" `Quick
            test_parallel_equals_sequential;
          Alcotest.test_case "structure" `Quick test_parallel_structure;
          Alcotest.test_case "quality" `Quick test_parallel_quality;
          Alcotest.test_case "probe exactness" `Quick
            test_parallel_probe_exactness;
          Alcotest.test_case "explicit pool = sequential" `Quick
            test_explicit_pool_equals_sequential;
          Alcotest.test_case "pool probe exactness" `Quick
            test_pool_probe_exactness;
          Alcotest.test_case "collect_range_list order" `Quick
            test_collect_range_list_order;
          Alcotest.test_case "pipeline pool path" `Quick
            test_pipeline_pool_path;
          Alcotest.test_case "pool survives raising job" `Quick
            test_pool_survives_raising_job;
          Alcotest.test_case "pipeline fallback counted" `Quick
            test_pipeline_fallback_counted;
          Alcotest.test_case "timing runs" `Quick test_time_comparison_runs;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_parallel_pure ]);
    ]
