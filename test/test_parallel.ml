(* Tests for mspar_parallel: the multicore G_delta construction must be a
   pure function of (seed, graph, delta) — identical output for any domain
   count, identical to the sequential reference. *)

open Mspar_prelude
open Mspar_graph
open Mspar_parallel

let check_bool = Alcotest.(check bool)

let test_vertex_rng_independent () =
  (* different vertices get different streams; same vertex, same stream *)
  let a = Par_gdelta.vertex_rng ~seed:1 0 in
  let b = Par_gdelta.vertex_rng ~seed:1 0 in
  check_bool "same vertex same stream" true (Rng.bits64 a = Rng.bits64 b);
  let c = Par_gdelta.vertex_rng ~seed:1 1 in
  let d = Par_gdelta.vertex_rng ~seed:2 0 in
  let a = Par_gdelta.vertex_rng ~seed:1 0 in
  check_bool "different vertex differs" false (Rng.bits64 a = Rng.bits64 c);
  let a = Par_gdelta.vertex_rng ~seed:1 0 in
  check_bool "different seed differs" false (Rng.bits64 a = Rng.bits64 d)

let test_parallel_equals_sequential () =
  let rng = Rng.create 5 in
  List.iter
    (fun (g, delta) ->
      let reference = Par_gdelta.sequential ~seed:99 g ~delta in
      List.iter
        (fun nd ->
          let s = Par_gdelta.sparsify ~num_domains:nd ~seed:99 g ~delta in
          check_bool
            (Printf.sprintf "domains=%d equals sequential" nd)
            true (Graph.equal s reference))
        [ 1; 2; 3; 4; 7 ])
    [
      (Gen.complete 60, 4);
      (Gen.gnp rng ~n:80 ~p:0.3, 3);
      (fst (Unit_disk.random rng ~n:100 ~radius:0.3), 6);
      (Gen.empty 10, 2);
      (Gen.path 9, 2);
    ]

let test_parallel_structure () =
  let g = Gen.complete 70 in
  let delta = 5 in
  let s = Par_gdelta.sparsify ~num_domains:4 ~seed:3 g ~delta in
  check_bool "subgraph" true (Graph.is_subgraph ~sub:s ~super:g);
  for v = 0 to Graph.n g - 1 do
    check_bool "degree floor" true
      (Graph.degree s v >= min (Graph.degree g v) delta)
  done;
  check_bool "naive size bound" true (Graph.m s <= Graph.n g * 2 * delta)

let test_parallel_quality () =
  let g = Gen.complete 80 in
  let s = Par_gdelta.sparsify ~num_domains:4 ~seed:7 g ~delta:8 in
  let os = Mspar_matching.Matching.size (Mspar_matching.Blossom.solve s) in
  check_bool
    (Printf.sprintf "quality %d vs 40" os)
    true
    (float_of_int 40 <= 1.5 *. float_of_int os)

let test_parallel_probe_exactness () =
  (* the probe counter is atomic, so concurrent domains must account every
     read — the parallel total equals the closed-form per-vertex cost, not
     a racy under-count *)
  let check_int = Alcotest.(check int) in
  let rng = Rng.create 77 in
  let g = Gen.gnp rng ~n:300 ~p:0.2 in
  let delta = 4 in
  let expected = ref 0 in
  for v = 0 to Graph.n g - 1 do
    let d = Graph.degree g v in
    expected := !expected + (if d <= 2 * delta then d else delta)
  done;
  Graph.reset_probes g;
  ignore (Par_gdelta.sequential ~seed:5 g ~delta);
  check_int "sequential probes" !expected (Graph.probes g);
  List.iter
    (fun nd ->
      Graph.reset_probes g;
      ignore (Par_gdelta.sparsify ~num_domains:nd ~seed:5 g ~delta);
      check_int
        (Printf.sprintf "domains=%d probes exact" nd)
        !expected (Graph.probes g))
    [ 2; 3; 4; 8 ]

let test_time_comparison_runs () =
  let g = Gen.complete 120 in
  let times = Par_gdelta.time_comparison ~seed:1 g ~delta:4 ~domains:[ 1; 2 ] in
  check_bool "two measurements" true (List.length times = 2);
  List.iter (fun (_, ms) -> check_bool "non-negative" true (ms >= 0.0)) times

let qcheck_parallel_pure =
  QCheck.Test.make
    ~name:"parallel output is a pure function of (seed, graph, delta)"
    ~count:30
    QCheck.(
      quad (int_range 2 40) (int_range 1 6) (int_range 0 1000) (int_range 1 5))
    (fun (n, delta, seed, domains) ->
      let g = Gen.gnp (Rng.create seed) ~n ~p:0.35 in
      let a = Par_gdelta.sparsify ~num_domains:domains ~seed g ~delta in
      let b = Par_gdelta.sequential ~seed g ~delta in
      Graph.equal a b)

let () =
  Alcotest.run "mspar_parallel"
    [
      ( "par-gdelta",
        [
          Alcotest.test_case "vertex rng" `Quick test_vertex_rng_independent;
          Alcotest.test_case "parallel = sequential" `Quick
            test_parallel_equals_sequential;
          Alcotest.test_case "structure" `Quick test_parallel_structure;
          Alcotest.test_case "quality" `Quick test_parallel_quality;
          Alcotest.test_case "probe exactness" `Quick
            test_parallel_probe_exactness;
          Alcotest.test_case "timing runs" `Quick test_time_comparison_runs;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_parallel_pure ]);
    ]
