(* Cross-layer integration tests: the same sparsifier built through every
   computational model, end-to-end pipelines compared on one instance set,
   and a direct check of the stability lemma (Lemma 3.4) that underpins the
   dynamic result. *)

open Mspar_prelude
open Mspar_graph
open Mspar_matching

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* One sparsifier, five constructions                                 *)
(* ------------------------------------------------------------------ *)

(* every construction must produce a subgraph with the per-vertex degree
   floor and near-lossless matching on K_n *)
let constructions =
  [
    ( "sequential",
      fun rng g delta ->
        fst (Mspar_core.Gdelta.sparsify rng g ~delta) );
    ( "distributed",
      fun rng g delta ->
        fst (Mspar_distsim.Sparsify_dist.gdelta rng g ~delta) );
    ( "streamed",
      fun rng g delta ->
        let edges = Graph.edges g in
        Rng.shuffle_in_place rng edges;
        let s, _, _ =
          Mspar_stream.Stream_sparsifier.run rng ~n:(Graph.n g) ~delta edges
        in
        s );
    ( "dynamic-snapshot",
      fun rng g delta ->
        let ds =
          Mspar_dynamic.Dyn_sparsifier.create rng ~n:(Graph.n g) ~delta
        in
        Graph.iter_edges g (fun u v ->
            ignore (Mspar_dynamic.Dyn_sparsifier.insert ds u v));
        Mspar_dynamic.Dyn_sparsifier.sparsifier ds );
  ]

let test_all_constructions_agree_structurally () =
  let g = Gen.complete 80 in
  let delta = 8 in
  List.iter
    (fun (name, construct) ->
      let rng = Rng.create 7 in
      let s = construct rng g delta in
      check_bool (name ^ ": subgraph") true (Graph.is_subgraph ~sub:s ~super:g);
      for v = 0 to Graph.n g - 1 do
        if Graph.degree s v < min (Graph.degree g v) delta then
          Alcotest.fail (name ^ ": degree floor violated")
      done;
      let os = Matching.size (Blossom.solve s) in
      check_bool
        (Printf.sprintf "%s: quality %d vs 40" name os)
        true
        (float_of_int 40 <= 1.5 *. float_of_int os))
    constructions

let test_all_constructions_size_bound () =
  (* Obs 2.10 must hold no matter how the sparsifier was built *)
  let g = Gen.disjoint_cliques (Rng.create 3) ~n:90 ~k:3 in
  let delta = 6 in
  let mcm = Matching.size (Blossom.solve g) in
  List.iter
    (fun (name, construct) ->
      let s = construct (Rng.create 11) g delta in
      check_bool (name ^ ": obs 2.10") true
        (Mspar_core.Properties.size_bound_obs_2_10 ~sparsifier:s ~mcm_size:mcm
           ~delta ~beta:1))
    constructions

let test_constructions_same_distribution () =
  (* The four constructions implement the same random object: each vertex's
     marks are a uniform min(delta, deg)-subset of its incident edges.  On a
     fixed small graph, the inclusion frequency of every edge must therefore
     agree across constructions (up to sampling noise). *)
  let g = Gen.complete 7 in
  let delta = 2 in
  let trials = 2500 in
  let edges = Graph.edges g in
  let freq_of construct =
    let counts = Hashtbl.create 32 in
    for t = 0 to trials - 1 do
      let s = construct (Rng.create (1000 + t)) g delta in
      Array.iter
        (fun e ->
          if Graph.has_edge s (fst e) (snd e) then
            Hashtbl.replace counts e
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts e)))
        edges
    done;
    Array.map
      (fun e ->
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts e))
        /. float_of_int trials)
      edges
  in
  let all = List.map (fun (name, c) -> (name, freq_of c)) constructions in
  (* theoretical inclusion probability on K_7 at delta=2:
     1 - (1 - 2/6)^2 = 5/9 *)
  let expected = 5.0 /. 9.0 in
  List.iter
    (fun (name, freqs) ->
      Array.iter
        (fun f ->
          if Float.abs (f -. expected) > 0.05 then
            Alcotest.fail
              (Printf.sprintf "%s: edge frequency %.3f far from %.3f" name f
                 expected))
        freqs)
    all

(* ------------------------------------------------------------------ *)
(* End-to-end pipelines on a shared instance set                      *)
(* ------------------------------------------------------------------ *)

let test_pipelines_end_to_end () =
  let rng = Rng.create 21 in
  let instances =
    [
      ("K80", Gen.complete 80, 1);
      ("line", Line_graph.random_base rng ~base_n:26 ~p:0.4, 2);
      ("udg", fst (Unit_disk.random rng ~n:150 ~radius:0.25), 5);
    ]
  in
  let eps = 0.5 in
  List.iter
    (fun (name, g, beta) ->
      let opt = Matching.size (Blossom.solve g) in
      let tolerance = (1.0 +. eps) *. (1.0 +. eps) *. (1.0 +. eps) in
      (* sequential *)
      let r = Mspar_core.Pipeline.run ~multiplier:1.0 (Rng.split rng) g ~beta ~eps in
      check_bool (name ^ ": seq valid") true
        (Matching.is_valid g r.Mspar_core.Pipeline.matching);
      check_bool (name ^ ": seq quality") true
        (float_of_int opt
        <= tolerance
           *. float_of_int (max 1 (Matching.size r.Mspar_core.Pipeline.matching)));
      (* distributed *)
      let d =
        Mspar_distsim.Pipeline_dist.run ~multiplier:1.0 ~attempts_per_phase:12
          (Rng.split rng) g ~beta ~eps
      in
      check_bool (name ^ ": dist valid") true
        (Matching.is_valid g d.Mspar_distsim.Pipeline_dist.matching);
      check_bool (name ^ ": dist quality") true
        (float_of_int opt
        <= tolerance
           *. float_of_int
                (max 1 (Matching.size d.Mspar_distsim.Pipeline_dist.matching)));
      (* MPC *)
      let cfg = { Mspar_mpc.Mpc.machines = 8; capacity = max_int } in
      let m =
        Mspar_mpc.Mpc_matching.run ~multiplier:1.0 (Rng.split rng) cfg g ~beta
          ~eps
      in
      check_bool (name ^ ": mpc valid") true
        (Matching.is_valid g m.Mspar_mpc.Mpc_matching.matching);
      check_bool (name ^ ": mpc quality") true
        (float_of_int opt
        <= tolerance
           *. float_of_int
                (max 1 (Matching.size m.Mspar_mpc.Mpc_matching.matching))))
    instances

(* ------------------------------------------------------------------ *)
(* Lemma 3.4 (Gupta-Peng stability)                                   *)
(* ------------------------------------------------------------------ *)

let test_stability_lemma_3_4 () =
  (* Start from a (1+eps)-approximate matching M_i of G_i.  Delete
     j <= eps' * |M_i| edges; let M_i^(j) be M_i minus deleted edges.  Then
     M_i^(j) is a (1 + 2eps + 2eps')-approximate matching of G_j. *)
  let rng = Rng.create 31 in
  let eps = 0.25 and eps' = 0.25 in
  for _trial = 0 to 9 do
    let n = 40 in
    let g0 = Gen.gnp rng ~n ~p:0.3 in
    let m = Blossom.solve g0 in
    (* exact, hence certainly (1+eps)-approximate *)
    let budget = int_of_float (eps' *. float_of_int (Matching.size m)) in
    let edges = Graph.edges g0 in
    Rng.shuffle_in_place rng edges;
    let deleted = Array.sub edges 0 (min budget (Array.length edges)) in
    let current = Matching.copy m in
    Array.iter
      (fun (u, v) ->
        if Matching.mate current u = v then Matching.remove_edge current u v)
      deleted;
    (* the remaining graph *)
    let deleted_set = Hashtbl.create 16 in
    Array.iter (fun e -> Hashtbl.replace deleted_set e ()) deleted;
    let remaining =
      Array.to_list edges
      |> List.filter (fun e -> not (Hashtbl.mem deleted_set e))
    in
    let gj = Graph.of_edges ~n remaining in
    check_bool "pruned matching valid on G_j" true
      (Matching.is_valid gj current);
    let opt_j = Matching.size (Blossom.solve gj) in
    let bound = 1.0 +. (2.0 *. eps) +. (2.0 *. eps') in
    check_bool
      (Printf.sprintf "lemma 3.4: |M^(j)|=%d vs opt %d (bound %.2f)"
         (Matching.size current) opt_j bound)
      true
      (float_of_int opt_j <= bound *. float_of_int (max 1 (Matching.size current)))
  done

let test_stability_size_drop_bounded () =
  (* each deletion removes at most one matched edge, so after j deletions
     the matching lost at most j edges (the mechanism behind Lemma 3.4) *)
  let rng = Rng.create 32 in
  let g = Gen.complete 30 in
  let m = Blossom.solve g in
  let before = Matching.size m in
  let edges = Graph.edges g in
  Rng.shuffle_in_place rng edges;
  let j = 7 in
  Array.iteri
    (fun i (u, v) ->
      if i < j && Matching.mate m u = v then Matching.remove_edge m u v)
    edges;
  check_bool "drop bounded by j" true (before - Matching.size m <= j)

(* ------------------------------------------------------------------ *)
(* Randomness hygiene                                                 *)
(* ------------------------------------------------------------------ *)

let test_whole_stack_deterministic_from_seed () =
  let run () =
    let rng = Rng.create 12345 in
    let g = Gen.gnp rng ~n:60 ~p:0.3 in
    let r = Mspar_core.Pipeline.run (Rng.split rng) g ~beta:5 ~eps:0.5 in
    let d =
      Mspar_distsim.Pipeline_dist.run ~attempts_per_phase:6 (Rng.split rng) g
        ~beta:5 ~eps:0.5
    in
    ( Matching.edges r.Mspar_core.Pipeline.matching,
      Matching.edges d.Mspar_distsim.Pipeline_dist.matching,
      d.Mspar_distsim.Pipeline_dist.messages )
  in
  let a = run () and b = run () in
  check_bool "identical full-stack runs" true (a = b)

let () =
  Alcotest.run "mspar_integration"
    [
      ( "constructions",
        [
          Alcotest.test_case "structural agreement" `Quick
            test_all_constructions_agree_structurally;
          Alcotest.test_case "size bound everywhere" `Quick
            test_all_constructions_size_bound;
          Alcotest.test_case "identical marking distribution" `Quick
            test_constructions_same_distribution;
        ] );
      ( "pipelines",
        [
          Alcotest.test_case "end to end" `Quick test_pipelines_end_to_end;
        ] );
      ( "stability",
        [
          Alcotest.test_case "lemma 3.4" `Quick test_stability_lemma_3_4;
          Alcotest.test_case "size drop bounded" `Quick
            test_stability_size_drop_bounded;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "whole stack from seed" `Quick
            test_whole_stack_deterministic_from_seed;
        ] );
    ]
